"""A live treatment-console simulation: prediction + continuous monitors.

Combines the online analysis session (per-frame latency-compensated
prediction) with the continuous clinical monitors: breathing rate, mean
amplitude, irregularity share, and a rate alarm with hysteresis.  The
patient breathes regularly, then drifts into rapid shallow breathing
mid-session — the console should flag it.

Run:  python examples/treatment_console.py
"""

import numpy as np

from repro import (
    MotionDatabase,
    RespiratorySimulator,
    SessionConfig,
    generate_population,
    segment_signal,
)
from repro.analysis.monitors import (
    AmplitudeMonitor,
    BreathingRateMonitor,
    IrregularityMonitor,
    ThresholdAlarm,
)
from repro.core.online import OnlineAnalysisSession

LATENCY = 0.2


def build_live_stream(profile):
    """First half normal, second half rapid shallow breathing."""
    normal = RespiratorySimulator(
        profile, SessionConfig(duration=40.0)
    ).generate_session(0, seed=3)
    distressed_profile = profile.with_traits(
        mean_period=profile.traits.mean_period * 0.55,
        mean_amplitude=profile.traits.mean_amplitude * 0.5,
        irregular_rate=0.10,
    )
    distressed = RespiratorySimulator(
        distressed_profile, SessionConfig(duration=40.0)
    ).generate_session(1, seed=4)
    times = np.concatenate([normal.times, distressed.times + 40.0])
    values = np.concatenate([normal.values, distressed.values])
    return times, values


def main() -> None:
    profile = generate_population(1, seed=8)[0]
    db = MotionDatabase()
    db.add_patient(profile.patient_id, profile.attributes)
    for k, raw in enumerate(
        RespiratorySimulator(
            profile, SessionConfig(duration=90.0)
        ).generate_sessions(2, seed=17)
    ):
        db.add_stream(
            profile.patient_id,
            f"S{k:02d}",
            series=segment_signal(raw.times, raw.values),
        )

    session = OnlineAnalysisSession(db, profile.patient_id, "CONSOLE")
    rate_monitor = BreathingRateMonitor(window_seconds=25.0)
    amp_monitor = AmplitudeMonitor(window_seconds=25.0)
    irr_monitor = IrregularityMonitor(window_seconds=40.0)
    baseline_rate = 60.0 / profile.traits.mean_period
    rate_alarm = ThresholdAlarm(
        BreathingRateMonitor(window_seconds=25.0),
        low=0.6 * baseline_rate,
        high=1.6 * baseline_rate,
        hysteresis=1.0,
    )

    print(f"patient {profile.patient_id}: baseline rate "
          f"{baseline_rate:.1f}/min, alarm band "
          f"[{0.6 * baseline_rate:.1f}, {1.6 * baseline_rate:.1f}]\n")
    print(f"{'t (s)':>6}  {'rate/min':>8}  {'amp mm':>7}  {'irr %':>6}  "
          f"{'pred+200ms':>10}  alarm")

    times, values = build_live_stream(profile)
    last_print = -5.0
    for t, position in zip(times, values):
        committed = session.observe(float(t), position)
        for vertex in committed:
            rate_monitor.update(vertex)
            amp_monitor.update(vertex)
            irr_monitor.update(vertex)
            event = rate_alarm.update(vertex)
            if event is not None:
                label = "RAISED" if event.active else "cleared"
                print(f"{'':>6}  ** breathing-rate alarm {label} at "
                      f"t={event.time:.1f}s (value {event.value:.1f}/min)")
        if t - last_print >= 8.0:
            last_print = t

            def cell(value, width, spec=".1f"):
                if value is None:
                    return "-".rjust(width)
                return format(value, spec).rjust(width)

            predicted = session.predict_ahead(LATENCY)
            irr = irr_monitor.value
            print(
                f"{t:6.1f}  "
                f"{cell(rate_monitor.value, 8)}  "
                f"{cell(amp_monitor.value, 7, '.2f')}  "
                f"{cell(100 * irr if irr is not None else None, 6)}  "
                f"{cell(predicted[0] if predicted is not None else None, 10, '.2f')}  "
                f"{'ACTIVE' if rate_alarm.active else '-'}"
            )
    session.finish()
    n_events = len(rate_alarm.events)
    print(f"\nalarm transitions: {n_events} "
          f"({'detected the mid-session change' if n_events else 'none'})")


if __name__ == "__main__":
    main()
