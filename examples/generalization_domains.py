"""Section 6: the framework on heartbeat, robot arm and tidal data.

The paper argues its four-step method (motion model, segmentation,
similarity, analysis) applies to any motion describable by a finite set
of linear states.  This example instantiates the framework for the three
domains the paper sketches, segments a signal in each, and predicts the
immediate future from subsequence matches.

Run:  python examples/generalization_domains.py
"""

from collections import Counter

from repro import BreathingState, StructuredMotionAnalyzer
from repro.signals.domains import (
    heartbeat_signal,
    heartbeat_spec,
    robot_arm_signal,
    robot_arm_spec,
    tide_signal,
    tide_spec,
)

DOMAINS = {
    "heartbeat (100 Hz, ~70 bpm)": (
        heartbeat_spec(),
        lambda seed: heartbeat_signal(duration=45.0, seed=seed),
        0.15,
        "s",
    ),
    "robot arm (20 Hz pick-and-place)": (
        robot_arm_spec(),
        lambda seed: robot_arm_signal(duration=90.0, seed=seed),
        0.3,
        "s",
    ),
    "tides (12 samples/hour, M2+S2)": (
        tide_spec(),
        lambda seed: tide_signal(duration_hours=200.0, seed=seed),
        1.0,
        "h",
    ),
}


def main() -> None:
    for title, (spec, generate, horizon, unit) in DOMAINS.items():
        analyzer = StructuredMotionAnalyzer(spec)

        # Historical session feeding the database...
        t_hist, x_hist = generate(seed=1)
        analyzer.ingest("unit-0", "hist", t_hist, x_hist)
        # ...and a live session to analyse.
        t_live, x_live = generate(seed=2)
        live_id = analyzer.ingest("unit-0", "live", t_live, x_live)

        series = analyzer.database.stream(live_id).series
        states = Counter(
            spec.describe_state(BreathingState(s)) for s in series.states
        )
        print(f"== {title} ==")
        print(f"  PLR: {len(series)} vertices over {series.duration:.1f}{unit}")
        print(f"  states: {dict(states)}")

        query = analyzer.query_for(live_id)
        prediction = analyzer.predict(live_id, horizon)
        if query is not None:
            signature = "".join(
                spec.describe_state(BreathingState(s))[0]
                for s in query.segment_states
            )
            print(f"  dynamic query: {query.n_vertices} vertices ({signature})")
        if prediction is None:
            print("  no prediction (insufficient matches)")
        else:
            print(
                f"  predicted position {horizon}{unit} ahead: "
                f"{prediction.primary:8.3f}  (from {prediction.n_matches} matches)"
            )
        print()


if __name__ == "__main__":
    main()
