"""Tests for dynamic query subsequence generation (Section 4.1)."""

import numpy as np
import pytest

from repro.core.model import PLRSeries, Vertex
from repro.core.query import QueryConfig, fixed_query, generate_query
from repro.core.stability import StabilityConfig

from conftest import EOE, EX, IN, make_series


def series_with_unstable_tail(calm_cycles=5, wild_cycles=3, seed=0):
    """Regular history followed by erratic recent cycles."""
    rng = np.random.default_rng(seed)
    series = PLRSeries()
    t = 0.0
    for i in range(calm_cycles + wild_cycles):
        wild = i >= calm_cycles
        amp = 10.0 + (rng.uniform(-6, 6) if wild else 0.0)
        dur = 1.0 + (rng.uniform(-0.5, 0.5) if wild else 0.0)
        series.append(Vertex(t, (0.0,), IN))
        series.append(Vertex(t + dur, (amp,), EX))
        series.append(Vertex(t + 2 * dur, (0.0,), EOE))
        t += 3 * dur
    series.append(Vertex(t, (0.0,), IN))
    return series


class TestGenerateQuery:
    def test_stable_history_gives_min_length(self, regular_series):
        config = QueryConfig(min_cycles=2, max_cycles=4)
        query = generate_query(regular_series, config)
        assert query is not None
        assert query.n_vertices == config.min_vertices
        assert query.stop == len(regular_series)

    def test_query_always_ends_at_most_recent_vertex(self):
        series = series_with_unstable_tail()
        query = generate_query(series, QueryConfig(min_cycles=2, max_cycles=6))
        assert query.stop == len(series)

    def test_unstable_tail_lengthens_query(self):
        calm = make_series(cycles=8)
        wild = series_with_unstable_tail(calm_cycles=2, wild_cycles=6)
        config = QueryConfig(
            min_cycles=2,
            max_cycles=8,
            stability=StabilityConfig(threshold=1.0),
        )
        q_calm = generate_query(calm, config)
        q_wild = generate_query(wild, config)
        assert q_calm.n_vertices < q_wild.n_vertices

    def test_max_length_respected(self):
        wild = series_with_unstable_tail(calm_cycles=0, wild_cycles=9)
        config = QueryConfig(
            min_cycles=2,
            max_cycles=4,
            stability=StabilityConfig(threshold=0.0),
        )
        query = generate_query(wild, config)
        assert query.n_vertices <= config.max_vertices + 1

    def test_short_series_returns_none(self):
        series = make_series(cycles=1)
        assert generate_query(series, QueryConfig(min_cycles=3)) is None

    def test_threshold_monotonicity(self):
        series = series_with_unstable_tail(calm_cycles=3, wild_cycles=4)
        lengths = []
        for sigma in (0.5, 2.0, 8.0, 32.0):
            config = QueryConfig(
                min_cycles=2,
                max_cycles=9,
                stability=StabilityConfig(threshold=sigma),
            )
            lengths.append(generate_query(series, config).n_vertices)
        assert all(a >= b for a, b in zip(lengths, lengths[1:]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QueryConfig(min_cycles=0)
        with pytest.raises(ValueError):
            QueryConfig(min_cycles=5, max_cycles=3)


class TestFixedQuery:
    def test_length(self, regular_series):
        query = fixed_query(regular_series, 2)
        assert query is not None
        assert query.n_vertices == 7
        assert query.stop == len(regular_series)

    def test_too_short_returns_none(self):
        series = make_series(cycles=1)
        assert fixed_query(series, 5) is None
