"""Tests for within-patient session progression analysis."""

import math

import numpy as np
import pytest

from repro.analysis.progression import (
    ProgressionReport,
    detect_change,
    session_progression,
)
from repro.core.segmentation import segment_signal
from repro.database.store import MotionDatabase
from repro.signals.patients import generate_population
from repro.signals.respiratory import RespiratorySimulator, SessionConfig


def build_patient_history(change_at=None, n_sessions=5, seed=0):
    """Sessions of one patient; from ``change_at`` on, traits shift."""
    profile = generate_population(1, seed=seed)[0]
    db = MotionDatabase()
    db.add_patient(profile.patient_id, profile.attributes)
    for k in range(n_sessions):
        p = profile
        if change_at is not None and k >= change_at:
            p = profile.with_traits(
                mean_amplitude=profile.traits.mean_amplitude * 0.5,
                mean_period=profile.traits.mean_period * 1.4,
            )
        raw = RespiratorySimulator(
            p, SessionConfig(duration=75.0)
        ).generate_session(k, seed=seed * 100 + k)
        db.add_stream(
            profile.patient_id,
            f"S{k:02d}",
            series=segment_signal(raw.times, raw.values),
        )
    return db, profile.patient_id


class TestSessionProgression:
    def test_report_shape(self):
        db, pid = build_patient_history(n_sessions=4)
        report = session_progression(db, pid, baseline_sessions=2)
        assert report.n_sessions == 4
        assert len(report.consecutive) == 3
        assert len(report.from_baseline) == 4
        assert math.isnan(report.from_baseline[0])
        assert math.isnan(report.from_baseline[1])
        assert all(np.isfinite(report.from_baseline[2:]))

    def test_stable_patient_flat_profile(self):
        db, pid = build_patient_history(change_at=None, n_sessions=5)
        report = session_progression(db, pid, baseline_sessions=2)
        finite = [d for d in report.from_baseline if math.isfinite(d)]
        assert max(finite) < 2.5 * min(finite)

    def test_pattern_change_raises_distance(self):
        db, pid = build_patient_history(change_at=3, n_sessions=5)
        report = session_progression(db, pid, baseline_sessions=2)
        before = report.from_baseline[2]
        after = np.mean(report.from_baseline[3:])
        assert after > 2.0 * before

    def test_validation(self):
        db, pid = build_patient_history(n_sessions=2)
        with pytest.raises(ValueError):
            session_progression(db, pid, baseline_sessions=2)
        db2 = MotionDatabase()
        db2.add_patient("PX")
        db2.add_stream("PX", "S00")
        with pytest.raises(ValueError):
            session_progression(db2, "PX")


class TestDetectChange:
    def test_flags_planted_change(self):
        db, pid = build_patient_history(change_at=3, n_sessions=6)
        report = session_progression(db, pid, baseline_sessions=2)
        assert detect_change(report) == 3

    def test_stable_patient_unflagged(self):
        db, pid = build_patient_history(change_at=None, n_sessions=5)
        report = session_progression(db, pid, baseline_sessions=2)
        assert detect_change(report, factor=3.0) is None

    def test_factor_validation(self):
        report = ProgressionReport("P", ("a", "b"), (1.0,), (float("nan"), 1.0))
        with pytest.raises(ValueError):
            detect_change(report, factor=1.0)
