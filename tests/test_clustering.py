"""Tests for the distance-matrix clustering algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    agglomerative,
    cluster_members,
    kmedoids,
    silhouette_score,
)


def blocky_matrix(sizes, within=1.0, between=10.0, seed=0):
    """A planted-cluster distance matrix with noise."""
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    n = len(labels)
    matrix = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            base = within if labels[i] == labels[j] else between
            matrix[i, j] = base + rng.uniform(0, 0.3)
    matrix = 0.5 * (matrix + matrix.T)
    np.fill_diagonal(matrix, 0.0)
    return matrix, labels


def agree(labels_a, labels_b):
    """Pairwise co-clustering agreement (label-permutation invariant)."""
    same_a = labels_a[:, None] == labels_a[None, :]
    same_b = labels_b[:, None] == labels_b[None, :]
    return float((same_a == same_b).mean())


class TestKMedoids:
    def test_recovers_planted_clusters(self):
        matrix, truth = blocky_matrix((4, 5, 3))
        result = kmedoids(matrix, k=3, seed=0)
        assert agree(result.labels, truth) == 1.0
        assert result.n_clusters == 3

    def test_medoids_are_members(self):
        matrix, _ = blocky_matrix((4, 4))
        result = kmedoids(matrix, k=2, seed=1)
        assert result.medoids is not None
        for c, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == c

    def test_k_one(self):
        matrix, _ = blocky_matrix((5,))
        result = kmedoids(matrix, k=1)
        assert set(result.labels) == {0}

    def test_k_equals_n(self):
        matrix, _ = blocky_matrix((3,))
        result = kmedoids(matrix, k=3, seed=0)
        assert result.n_clusters == 3

    def test_invalid_inputs(self):
        matrix, _ = blocky_matrix((4,))
        with pytest.raises(ValueError):
            kmedoids(matrix, k=0)
        with pytest.raises(ValueError):
            kmedoids(matrix, k=5)
        with pytest.raises(ValueError):
            kmedoids(np.array([[0.0, np.inf], [np.inf, 0.0]]), k=1)
        with pytest.raises(ValueError):
            kmedoids(np.zeros((2, 3)), k=1)


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["average", "complete", "single"])
    def test_recovers_planted_clusters(self, linkage):
        matrix, truth = blocky_matrix((4, 5, 3), seed=2)
        result = agglomerative(matrix, n_clusters=3, linkage=linkage)
        assert agree(result.labels, truth) == 1.0

    def test_one_cluster(self):
        matrix, _ = blocky_matrix((6,))
        result = agglomerative(matrix, n_clusters=1)
        assert set(result.labels) == {0}

    def test_unknown_linkage(self):
        matrix, _ = blocky_matrix((4,))
        with pytest.raises(ValueError):
            agglomerative(matrix, 2, linkage="ward")


class TestSilhouette:
    def test_planted_better_than_random(self):
        matrix, truth = blocky_matrix((5, 5))
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 2, len(truth))
        assert silhouette_score(matrix, truth) > silhouette_score(
            matrix, random_labels
        )

    def test_perfect_separation_near_one(self):
        matrix, truth = blocky_matrix((5, 5), within=0.1, between=50.0)
        assert silhouette_score(matrix, truth) > 0.9

    def test_single_cluster_rejected(self):
        matrix, _ = blocky_matrix((4,))
        with pytest.raises(ValueError):
            silhouette_score(matrix, np.zeros(4, dtype=int))


class TestClusterMembers:
    def test_mapping(self):
        labels = np.array([0, 1, 0, 2])
        members = cluster_members(labels, ("a", "b", "c", "d"))
        assert members == {0: ("a", "c"), 1: ("b",), 2: ("d",)}

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            cluster_members(np.array([0, 1]), ("a",))


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=2, max_value=5), min_size=2,
                   max_size=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_kmedoids_partitions(sizes, seed):
    """Labels always form a partition into exactly k non-empty clusters."""
    matrix, _ = blocky_matrix(tuple(sizes), seed=seed)
    k = len(sizes)
    result = kmedoids(matrix, k=k, seed=seed)
    assert len(result.labels) == sum(sizes)
    assert set(result.labels) == set(range(k))
