"""Tests for the continuous clinical monitors."""

import pytest

from repro.analysis.monitors import (
    AmplitudeMonitor,
    BreathingRateMonitor,
    IrregularityMonitor,
    ThresholdAlarm,
)
from repro.core.model import Vertex

from conftest import EX, IN, IRR, make_series


def feed(monitor, series):
    value = None
    for vertex in series:
        value = monitor.update(vertex)
    return value


class TestBreathingRateMonitor:
    def test_rate_of_regular_breathing(self):
        series = make_series(cycles=8, period=4.0)  # 15 breaths/min
        rate = feed(BreathingRateMonitor(window_seconds=60.0), series)
        assert rate == pytest.approx(15.0, rel=0.05)

    def test_none_until_two_breaths(self):
        monitor = BreathingRateMonitor()
        assert monitor.update(Vertex(0.0, (0.0,), IN)) is None
        assert monitor.value is None

    def test_window_tracks_recent_rate(self):
        monitor = BreathingRateMonitor(window_seconds=20.0)
        # 10 slow cycles (6 s) followed by 10 fast cycles (2 s).
        slow = make_series(cycles=10, period=6.0)
        for v in slow:
            monitor.update(v)
        t0 = slow.end_time
        fast = make_series(cycles=10, period=2.0, start=t0 + 0.1)
        rate = feed(monitor, fast)
        assert rate == pytest.approx(30.0, rel=0.1)


class TestAmplitudeMonitor:
    def test_mean_amplitude(self):
        series = make_series(cycles=6, amplitude=12.0)
        value = feed(AmplitudeMonitor(window_seconds=60.0), series)
        assert value == pytest.approx(12.0)

    def test_none_with_too_few_segments(self):
        monitor = AmplitudeMonitor()
        assert monitor.update(Vertex(0.0, (0.0,), IN)) is None


class TestIrregularityMonitor:
    def test_regular_stream_is_zero(self):
        series = make_series(cycles=6)
        assert feed(IrregularityMonitor(), series) == 0.0

    def test_counts_irregular_share(self):
        monitor = IrregularityMonitor(window_seconds=100.0)
        states = [IN, EX, IRR, IRR, IN, EX]
        value = None
        for i, state in enumerate(states):
            value = monitor.update(Vertex(float(i), (0.0,), state))
        assert value == pytest.approx(2 / 5)


class TestThresholdAlarm:
    def test_fires_and_clears_with_hysteresis(self):
        monitor = BreathingRateMonitor(window_seconds=15.0)
        alarm = ThresholdAlarm(monitor, low=10.0, high=20.0, hysteresis=1.0)
        # Regular 4 s cycles: 15/min, inside the band.
        for v in make_series(cycles=4, period=4.0):
            assert alarm.update(v) is None
        assert not alarm.active
        # Speed up to 1.5 s cycles: 40/min -> fires.
        t0 = 16.1
        fired = False
        for v in make_series(cycles=6, period=1.5, start=t0):
            event = alarm.update(v)
            if event is not None:
                assert event.active
                fired = True
        assert fired and alarm.active
        # Back to 4 s cycles: clears once well inside the band.
        cleared = False
        for v in make_series(cycles=8, period=4.0, start=26.0):
            event = alarm.update(v)
            if event is not None and not event.active:
                cleared = True
        assert cleared and not alarm.active
        kinds = [e.active for e in alarm.events]
        assert kinds == [True, False]

    def test_validation(self):
        monitor = BreathingRateMonitor()
        with pytest.raises(ValueError):
            ThresholdAlarm(monitor)
        with pytest.raises(ValueError):
            ThresholdAlarm(monitor, low=5.0, high=4.0)
        with pytest.raises(ValueError):
            ThresholdAlarm(monitor, low=1.0, hysteresis=-0.1)

    def test_one_sided_band(self):
        monitor = AmplitudeMonitor(window_seconds=60.0)
        alarm = ThresholdAlarm(monitor, low=5.0)
        for v in make_series(cycles=5, amplitude=2.0):
            alarm.update(v)
        assert alarm.active


class TestOnSegmentedStream:
    def test_monitors_on_simulated_session(self, raw_stream):
        from repro.core.segmentation import OnlineSegmenter

        segmenter = OnlineSegmenter()
        rate_monitor = BreathingRateMonitor()
        amp_monitor = AmplitudeMonitor()
        rate = amplitude = None
        for t, position in raw_stream.iter_points():
            for vertex in segmenter.add_point(t, position):
                rate = rate_monitor.update(vertex)
                amplitude = amp_monitor.update(vertex)
        assert rate is not None and 5.0 < rate < 40.0
        assert amplitude is not None and amplitude > 0.5


class _ScriptedMonitor:
    """Replays a fixed value sequence, one per update (edge-case probe)."""

    def __init__(self, values):
        self._values = iter(values)

    def update(self, vertex):
        return next(self._values)


def _drive(alarm, values):
    """Feed one synthetic vertex per scripted value; return the events."""
    events = []
    for i in range(len(values)):
        event = alarm.update(Vertex(float(i), (0.0,), IN))
        if event is not None:
            events.append(event)
    return events


class TestThresholdAlarmHysteresisEdges:
    def test_value_exactly_on_band_boundary_does_not_fire(self):
        values = [10.0, 20.0, 15.0]
        alarm = ThresholdAlarm(
            _ScriptedMonitor(values), low=10.0, high=20.0, hysteresis=1.0
        )
        assert _drive(alarm, values) == []
        assert not alarm.active

    def test_value_just_outside_boundary_fires(self):
        for values in ([9.999], [20.001]):
            alarm = ThresholdAlarm(
                _ScriptedMonitor(values), low=10.0, high=20.0
            )
            events = _drive(alarm, values)
            assert [e.active for e in events] == [True]

    def test_clears_exactly_at_hysteresis_margin(self):
        # Active alarm: value == low + hysteresis is "well inside".
        values = [5.0, 11.0]
        alarm = ThresholdAlarm(
            _ScriptedMonitor(values), low=10.0, high=20.0, hysteresis=1.0
        )
        events = _drive(alarm, values)
        assert [e.active for e in events] == [True, False]
        assert not alarm.active

    def test_inside_band_but_within_margin_does_not_clear(self):
        # 10.5 is back inside [10, 20] but not by the 1.0 margin: the
        # alarm must hold (no chatter at the boundary).
        values = [5.0, 10.5, 10.9]
        alarm = ThresholdAlarm(
            _ScriptedMonitor(values), low=10.0, high=20.0, hysteresis=1.0
        )
        events = _drive(alarm, values)
        assert [e.active for e in events] == [True]
        assert alarm.active

    def test_rearms_after_recovery(self):
        values = [5.0, 15.0, 25.0, 15.0, 5.0]
        alarm = ThresholdAlarm(
            _ScriptedMonitor(values), low=10.0, high=20.0, hysteresis=1.0
        )
        events = _drive(alarm, values)
        assert [e.active for e in events] == [True, False, True, False, True]
        assert alarm.active
        assert [e.active for e in alarm.events] == [
            True,
            False,
            True,
            False,
            True,
        ]
