"""Tests for the synthetic signal substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import BreathingState
from repro.signals.noise import (
    BaselineDrift,
    CardiacMotion,
    GaussianJitter,
    SpikeNoise,
    compose_noise,
)
from repro.signals.patients import (
    PatientAttributes,
    generate_population,
    traits_from_attributes,
)
from repro.signals.respiratory import (
    RespiratorySimulator,
    SessionConfig,
)
from repro.signals.waveforms import CycleSpec, render_cycle


class TestWaveforms:
    def test_cycle_spec_validation(self):
        with pytest.raises(ValueError):
            CycleSpec(period=0.0, amplitude=1.0)
        with pytest.raises(ValueError):
            CycleSpec(period=4.0, amplitude=-1.0)
        with pytest.raises(ValueError):
            CycleSpec(period=4.0, amplitude=1.0,
                      inhale_fraction=0.6, exhale_fraction=0.4)
        with pytest.raises(ValueError):
            CycleSpec(period=4.0, amplitude=1.0, shape_power=0.0)

    def test_render_cycle_phases(self):
        spec = CycleSpec(period=4.0, amplitude=10.0)
        times = np.arange(0, 4.0, 1 / 30)
        values, phases = render_cycle(spec, 0.0, times)
        assert len(phases) == 3
        assert [p.state for p in phases] == [
            BreathingState.IN, BreathingState.EX, BreathingState.EOE
        ]
        assert phases[0].start_time == 0.0
        assert phases[-1].end_time == pytest.approx(4.0)

    def test_render_cycle_amplitude_and_baseline(self):
        spec = CycleSpec(period=4.0, amplitude=10.0, baseline=3.0)
        times = np.arange(0, 4.0, 1 / 60)
        values, _ = render_cycle(spec, 0.0, times)
        valid = values[~np.isnan(values)]
        assert valid.max() == pytest.approx(13.0, abs=0.05)
        assert valid.min() == pytest.approx(3.0, abs=0.05)

    def test_render_outside_is_nan(self):
        spec = CycleSpec(period=2.0, amplitude=5.0)
        times = np.array([-1.0, 0.5, 3.0])
        values, _ = render_cycle(spec, 0.0, times)
        assert np.isnan(values[0]) and np.isnan(values[2])
        assert not np.isnan(values[1])


class TestNoiseModels:
    def test_cardiac_bounded(self):
        times = np.arange(0, 30, 1 / 30)
        noise = CardiacMotion(amplitude=0.5)(times, np.random.default_rng(0))
        assert np.max(np.abs(noise)) <= 0.5 + 1e-9

    def test_spike_rate(self):
        times = np.arange(0, 1000, 1 / 30)
        noise = SpikeNoise(rate=0.1)(times, np.random.default_rng(0))
        n_spikes = np.count_nonzero(noise)
        assert 50 < n_spikes < 200  # ~100 expected

    def test_jitter_scale(self):
        times = np.arange(0, 100, 1 / 30)
        noise = GaussianJitter(sigma=0.2)(times, np.random.default_rng(0))
        assert 0.15 < noise.std() < 0.25

    def test_drift_starts_at_zero_and_wanders(self):
        times = np.arange(0, 300, 1 / 30)
        noise = BaselineDrift(rate=0.1)(times, np.random.default_rng(0))
        assert noise[0] == pytest.approx(0.0)
        assert np.max(np.abs(noise)) > 0.05

    def test_compose(self):
        times = np.arange(0, 10, 1 / 30)
        rng = np.random.default_rng(0)
        total = compose_noise(times, [GaussianJitter(0.1), CardiacMotion()], rng)
        assert total.shape == times.shape


class TestPatients:
    def test_attribute_validation(self):
        with pytest.raises(ValueError):
            PatientAttributes("P", 50, "F", "brain", "none")
        with pytest.raises(ValueError):
            PatientAttributes("P", 50, "X", "abdomen", "none")
        with pytest.raises(ValueError):
            PatientAttributes("P", 50, "M", "abdomen", "flu")

    def test_site_drives_amplitude(self):
        rng = np.random.default_rng(0)
        amps = {}
        for site in ("lung_upper", "lung_lower", "abdomen"):
            values = [
                traits_from_attributes(
                    PatientAttributes(f"P{i}", 60, "F", site, "none"),
                    np.random.default_rng(i),
                ).mean_amplitude
                for i in range(10)
            ]
            amps[site] = np.mean(values)
        assert amps["lung_upper"] < amps["lung_lower"] < amps["abdomen"]

    def test_pathology_drives_irregularity(self):
        t_none = traits_from_attributes(
            PatientAttributes("P", 60, "F", "abdomen", "none"),
            np.random.default_rng(0),
        )
        t_copd = traits_from_attributes(
            PatientAttributes("P", 60, "F", "abdomen", "copd"),
            np.random.default_rng(0),
        )
        assert t_copd.irregular_rate > t_none.irregular_rate
        assert t_copd.mean_period > t_none.mean_period

    def test_population_reproducible(self):
        a = generate_population(6, seed=4)
        b = generate_population(6, seed=4)
        assert [p.traits for p in a] == [p.traits for p in b]
        assert len({p.patient_id for p in a}) == 6

    def test_population_strata_covered(self):
        population = generate_population(9, seed=0)
        assert {p.attributes.tumor_site for p in population} == {
            "lung_upper", "lung_lower", "abdomen"
        }

    def test_with_traits_override(self):
        profile = generate_population(1, seed=0)[0]
        changed = profile.with_traits(mean_period=9.9)
        assert changed.traits.mean_period == 9.9
        assert changed.attributes is profile.attributes


class TestRespiratorySimulator:
    def test_deterministic_given_seed(self, small_population):
        sim = RespiratorySimulator(small_population[0])
        a = sim.generate_session(0, seed=5)
        b = sim.generate_session(0, seed=5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_sessions_differ(self, small_population):
        sim = RespiratorySimulator(small_population[0])
        a = sim.generate_session(0, seed=1)
        b = sim.generate_session(1, seed=2)
        assert not np.allclose(a.values[:300], b.values[:300])

    def test_shape_and_rate(self, raw_stream):
        assert raw_stream.n_samples == 60 * 30
        assert raw_stream.ndim == 1
        assert raw_stream.sample_rate == 30.0

    def test_truth_covers_duration(self, raw_stream):
        assert raw_stream.truth[0].start_time == 0.0
        assert raw_stream.truth[-1].end_time >= 60.0 - 1e-6
        # contiguous annotation
        for a, b in zip(raw_stream.truth, raw_stream.truth[1:]):
            assert b.start_time == pytest.approx(a.end_time)

    def test_truth_state_lookup(self, raw_stream):
        assert raw_stream.truth_state_at(-5.0) is None
        mid = raw_stream.truth[3]
        t = 0.5 * (mid.start_time + mid.end_time)
        assert raw_stream.truth_state_at(t) is mid.state

    def test_amplitude_matches_traits(self, small_population):
        profile = small_population[2]  # abdomen -> large amplitude
        sim = RespiratorySimulator(profile, SessionConfig(duration=60.0))
        raw = sim.generate_session(0, seed=3)
        # Peak-to-peak exceeds the mean cycle amplitude (modulation, noise,
        # irregular bursts) but stays within a small multiple of it.
        peak_to_peak = raw.primary.max() - raw.primary.min()
        amplitude = profile.traits.mean_amplitude
        assert 0.8 * amplitude < peak_to_peak < 2.5 * amplitude

    def test_multidimensional_output(self, small_population):
        sim = RespiratorySimulator(
            small_population[0], SessionConfig(duration=20.0, ndim=3)
        )
        raw = sim.generate_session(0, seed=0)
        assert raw.ndim == 3
        # Secondary axes are scaled copies of the primary motion.
        corr = np.corrcoef(raw.values[:, 0], raw.values[:, 1])[0, 1]
        assert corr > 0.8

    def test_iter_points(self, raw_stream):
        points = list(raw_stream.iter_points())
        assert len(points) == raw_stream.n_samples
        t0, p0 = points[0]
        assert t0 == 0.0 and p0.shape == (1,)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(duration=0.0)
        with pytest.raises(ValueError):
            SessionConfig(ndim=0)

    def test_irregular_episodes_present(self):
        profile = generate_population(1, seed=0)[0].with_traits(
            irregular_rate=0.25
        )
        sim = RespiratorySimulator(profile, SessionConfig(duration=120.0))
        raw = sim.generate_session(0, seed=2)
        assert any(
            p.state is BreathingState.IRR for p in raw.truth
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_stream_is_finite_and_annotated(seed):
    profile = generate_population(1, seed=seed % 7)[0]
    raw = RespiratorySimulator(
        profile, SessionConfig(duration=30.0)
    ).generate_session(0, seed=seed)
    assert np.all(np.isfinite(raw.values))
    assert raw.truth[-1].end_time >= 30.0 - 1e-6
