"""Match-mode equivalence suite: engine vs frozen oracles, metamorphic laws.

Every pluggable mode's engine retrieval — the indexed (coarse-to-fine
for warping) path and the linear-scan ablation path — must agree with
its frozen naive reference in :mod:`repro.testing.oracle` on random
FSA-plausible databases.  On top of the per-mode sweeps, the modes obey
metamorphic laws that pin their *semantics* rather than their
implementation:

* normalized retrieval is invariant under per-stream affine rescaling
  ``a*x + b`` with ``a > 0`` of the raw positions;
* warped retrieval with ``warp_band=0`` equals rigid retrieval exactly
  (only the diagonal alignment is admissible);
* rigid mode is byte-identical to the historical default path.

Databases go through ``make_test_database`` so the whole file runs
against both ``REPRO_TEST_BACKEND`` backends.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import PartialTopK, QueryView, SubsequenceMatcher
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.core.similarity import MatchMode, SimilarityParams
from repro.service.builder import PipelineBuilder
from repro.testing.oracle import check_equivalence, reference_matches_for_mode

from conftest import EOE, EX, IN, make_test_database

#: Permissive enough that random databases produce matches, finite so a
#: spurious ``inf`` distance can never slip through as a match.
THRESHOLD = 50.0

#: Effectively unbounded — but finite: ``inf <= inf`` is True, so an
#: infinite threshold would mask exactly the bug class it should catch.
BIG = 1e12

MODE_PARAMS = {
    "rigid": SimilarityParams(mode=MatchMode.RIGID),
    "normalized": SimilarityParams(mode=MatchMode.NORMALIZED),
    "warped": SimilarityParams(mode=MatchMode.WARPED, warp_band=1),
}

SWEEP_MODES = sorted(MODE_PARAMS)


def random_plr(rng, n_vertices, irregular_rate=0.1):
    """A random FSA-plausible PLR series."""
    series = PLRSeries()
    t = 0.0
    order = [IN, EX, EOE]
    position = 0.0
    cursor = int(rng.integers(0, 3))
    for _ in range(n_vertices):
        if rng.random() < irregular_rate:
            state = BreathingState.IRR
        else:
            state = order[cursor % 3]
            cursor += 1
        series.append(Vertex(t, (position,), state))
        t += float(rng.uniform(0.4, 2.0))
        if state is IN:
            position += float(rng.uniform(3.0, 15.0))
        elif state is EX:
            position -= float(rng.uniform(3.0, 15.0))
        else:
            position += float(rng.uniform(-0.5, 0.5))
    return series


def random_database(rng, n_patients=2, sessions=2):
    """Random small cohort over the backend under test."""
    db = make_test_database()
    for p in range(n_patients):
        pid = f"P{p}"
        db.add_patient(pid)
        for s in range(sessions):
            db.add_stream(
                pid, f"S{s}", series=random_plr(rng, int(rng.integers(14, 32)))
            )
    return db


def random_query(db, rng, length):
    """A query window cut from the first stream (``None`` if too short)."""
    series = db.stream("P0/S0").series
    if len(series) <= length:
        return None
    start = int(rng.integers(0, len(series) - length))
    return series.subsequence(start, start + length)


def match_key(match):
    """Identity triple — warped matches can differ in length."""
    return (match.stream_id, match.start, match.n_vertices)


# -- engine vs frozen oracle ---------------------------------------------------


@pytest.mark.parametrize("mode", SWEEP_MODES)
@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    query_len=st.integers(min_value=3, max_value=8),
)
def test_engine_agrees_with_frozen_oracle(mode, seed, query_len):
    """Indexed and linear-scan retrieval == the mode's naive reference."""
    params = MODE_PARAMS[mode]
    rng = np.random.default_rng(seed)
    db = random_database(rng)
    query = random_query(db, rng, query_len)
    if query is None:
        return
    oracle = reference_matches_for_mode(
        db, query, "P0/S0", threshold=THRESHOLD, params=params
    )
    for use_index in (True, False):
        engine = SubsequenceMatcher(db, params, use_index=use_index)
        check_equivalence(
            engine.find_matches(query, "P0/S0", threshold=THRESHOLD), oracle
        )
    # Top-k truncation must commute with the mode's ranking.
    oracle_k = reference_matches_for_mode(
        db, query, "P0/S0", threshold=THRESHOLD, max_matches=3, params=params
    )
    engine_k = SubsequenceMatcher(db, params).find_matches(
        query, "P0/S0", threshold=THRESHOLD, max_matches=3
    )
    check_equivalence(engine_k, oracle_k, max_matches=3)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    band=st.integers(min_value=0, max_value=3),
)
def test_warped_engine_agrees_with_oracle_across_bands(seed, band):
    """The band is part of the contract, not a tuning knob."""
    params = SimilarityParams(mode=MatchMode.WARPED, warp_band=band)
    rng = np.random.default_rng(seed)
    db = random_database(rng)
    query = random_query(db, rng, int(rng.integers(3, 8)))
    if query is None:
        return
    oracle = reference_matches_for_mode(
        db, query, "P0/S0", threshold=THRESHOLD, params=params
    )
    for use_index in (True, False):
        engine = SubsequenceMatcher(db, params, use_index=use_index)
        check_equivalence(
            engine.find_matches(query, "P0/S0", threshold=THRESHOLD), oracle
        )


# -- metamorphic laws ----------------------------------------------------------


def affine_series(series, a, b):
    """Rebuild a PLR with every raw position mapped through ``a*x + b``."""
    out = PLRSeries()
    for i in range(len(series)):
        vertex = series.vertex(i)
        out.append(
            Vertex(
                vertex.time,
                tuple(a * p + b for p in vertex.position),
                vertex.state,
            )
        )
    return out


@settings(max_examples=75, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_normalized_invariant_under_per_stream_affine_rescaling(seed):
    """``a*x + b`` (``a > 0``), per stream, never changes normalized results.

    Timing is untouched and per-window z-normalization absorbs any
    positive gain and offset of the amplitudes, so the match identities
    *and* distances must survive independent rescaling of every stream.
    Ordering may swap between float near-ties, so the comparison is the
    key -> distance mapping, not the ranked list.
    """
    rng = np.random.default_rng(seed)
    db = random_database(rng)
    scaled = make_test_database()
    for p in range(2):
        pid = f"P{p}"
        scaled.add_patient(pid)
        for s in range(2):
            a = float(rng.uniform(0.25, 4.0))
            b = float(rng.uniform(-50.0, 50.0))
            scaled.add_stream(
                pid,
                f"S{s}",
                series=affine_series(db.stream(f"{pid}/S{s}").series, a, b),
            )
    length = int(rng.integers(3, 8))
    series = db.stream("P0/S0").series
    if len(series) <= length:
        return
    start = int(rng.integers(0, len(series) - length))
    query = series.subsequence(start, start + length)
    query_scaled = scaled.stream("P0/S0").series.subsequence(
        start, start + length
    )
    params = MODE_PARAMS["normalized"]
    base = SubsequenceMatcher(db, params).find_matches(
        query, "P0/S0", threshold=BIG
    )
    rescaled = SubsequenceMatcher(scaled, params).find_matches(
        query_scaled, "P0/S0", threshold=BIG
    )
    assert {match_key(m) for m in base} == {match_key(m) for m in rescaled}
    by_key = {match_key(m): m.distance for m in rescaled}
    for m in base:
        np.testing.assert_allclose(
            by_key[match_key(m)], m.distance, rtol=1e-9, atol=1e-9
        )


@settings(max_examples=75, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    query_len=st.integers(min_value=3, max_value=8),
)
def test_warp_band_zero_equals_rigid_exactly(seed, query_len):
    """Band 0 admits only the diagonal alignment: rigid, bit for bit."""
    rng = np.random.default_rng(seed)
    db = random_database(rng)
    query = random_query(db, rng, query_len)
    if query is None:
        return
    rigid = SubsequenceMatcher(db, SimilarityParams()).find_matches(
        query, "P0/S0", threshold=BIG
    )
    zero_band = SimilarityParams(mode=MatchMode.WARPED, warp_band=0)
    for use_index in (True, False):
        warped = SubsequenceMatcher(
            db, zero_band, use_index=use_index
        ).find_matches(query, "P0/S0", threshold=BIG)
        assert warped == rigid


def test_rigid_mode_is_byte_identical_to_default():
    """``mode="rigid"`` takes the historical path: identical Match lists."""
    rng = np.random.default_rng(7)
    db = random_database(rng, n_patients=3)
    query = random_query(db, rng, 6)
    assert query is not None
    default = SubsequenceMatcher(db).find_matches(
        query, "P0/S0", threshold=BIG
    )
    explicit = SubsequenceMatcher(
        db, SimilarityParams(mode="rigid")
    ).find_matches(query, "P0/S0", threshold=BIG)
    assert default  # the property is vacuous on an empty result
    assert explicit == default


def test_unknown_mode_and_bad_band_are_rejected():
    with pytest.raises(ValueError):
        SimilarityParams(mode="fuzzy")
    with pytest.raises(ValueError):
        SimilarityParams(warp_band=-1)
    with pytest.raises(ValueError):
        SimilarityParams(warp_band=1.5)


# -- serving-tier plumbing -----------------------------------------------------


@pytest.mark.parametrize("mode", SWEEP_MODES)
def test_builder_payload_roundtrip_preserves_mode(mode):
    """The sharded wire protocol carries the mode without translation."""
    builder = PipelineBuilder(similarity=MODE_PARAMS[mode])
    payload = json.loads(json.dumps(builder.to_payload()))
    rebuilt = PipelineBuilder.from_payload(payload)
    assert rebuilt == builder
    assert rebuilt.similarity.mode is MODE_PARAMS[mode].mode
    assert rebuilt.similarity.warp_band == MODE_PARAMS[mode].warp_band


@pytest.mark.parametrize("mode", SWEEP_MODES)
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_partial_topk_merge_equals_single_process(mode, seed):
    """Scatter/gather == one process, byte for byte, under every mode.

    Patients split across two shard databases; per-shard ``find_partial``
    over the same :class:`QueryView`, merged, must equal one matcher over
    the union database.  Distance kernels reduce row-locally, so shard
    membership cannot perturb a single bit.
    """
    params = MODE_PARAMS[mode]
    rng = np.random.default_rng(seed)
    full = make_test_database()
    shards = [make_test_database(), make_test_database()]
    for p in range(4):
        pid = f"P{p}"
        series = random_plr(rng, int(rng.integers(14, 30)))
        for target in (full, shards[p % 2]):
            target.add_patient(pid)
            target.add_stream(pid, "S0", series=series)
    remote = random_plr(rng, 8)
    view = QueryView.from_query(remote.subsequence(0, len(remote)))
    solo = SubsequenceMatcher(full, params).find_matches(
        view, query_stream_id=None, threshold=THRESHOLD, max_matches=5
    )
    parts = [
        SubsequenceMatcher(shard, params).find_partial(
            view, threshold=THRESHOLD, max_matches=5
        )
        for shard in shards
    ]
    assert PartialTopK.merge(parts, max_matches=5) == solo
