"""Differential-oracle tests: frozen references vs the production engine.

The hypothesis property below is the acceptance workhorse: across
hundreds of randomized databases the columnar engine (indexed *and*
linear-scan paths) must agree with the naive O(n·m) reference matcher
on identity, distances and ordering.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import Match, SubsequenceMatcher
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.core.segmentation import segment_signal
from repro.core.similarity import SimilarityParams, SourceRelation
from repro.testing.oracle import (
    EquivalenceError,
    check_equivalence,
    check_plr_invariants,
    reference_distance,
    reference_matches,
    reference_segment,
)

from conftest import make_test_database
from tests_support import clean_cycles


def _series_from(times, positions, states):
    series = PLRSeries()
    for t, x, s in zip(times, positions, states):
        series.append(Vertex(float(t), (float(x),), BreathingState(s)))
    return series


# -- strategies ----------------------------------------------------------------

# Two-state alphabet: signature collisions (hence non-trivial candidate
# sets) are common, which is what stresses the engine.
_states = st.integers(0, 1)
_gap = st.floats(0.2, 3.0, allow_nan=False, allow_infinity=False)
_position = st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False)


@st.composite
def _stream(draw, min_vertices=4, max_vertices=14):
    n = draw(st.integers(min_vertices, max_vertices))
    gaps = draw(
        st.lists(_gap, min_size=n, max_size=n)
    )
    times = np.cumsum(gaps)
    positions = draw(st.lists(_position, min_size=n, max_size=n))
    states = draw(st.lists(_states, min_size=n, max_size=n))
    return times, positions, states


@st.composite
def _scenario(draw):
    streams = draw(st.lists(_stream(), min_size=1, max_size=3))
    m = draw(st.integers(3, 5))
    n0 = len(streams[0][0])
    if n0 < m:
        m = n0
    start = draw(st.integers(0, n0 - m))
    threshold = draw(
        st.one_of(st.just(math.inf), st.floats(0.5, 50.0, allow_nan=False))
    )
    max_matches = draw(st.one_of(st.none(), st.integers(1, 5)))
    return streams, m, start, threshold, max_matches


def _build_db(streams):
    # Runs on the storage backend selected by REPRO_TEST_BACKEND, so the
    # equivalence property doubles as a backend-correctness check.
    db = make_test_database()
    for i, (times, positions, states) in enumerate(streams):
        patient = f"P{i % 2}"  # two patients: exercises source relations
        if patient not in db.patient_ids:
            db.add_patient(patient)
        db.add_stream(
            patient, f"S{i}", series=_series_from(times, positions, states)
        )
    return db


class TestMatcherEquivalence:
    @settings(max_examples=220, deadline=None)
    @given(scenario=_scenario())
    def test_engine_agrees_with_reference(self, scenario):
        streams, m, start, threshold, max_matches = scenario
        db = _build_db(streams)
        query_stream = db.stream_ids[0]
        query = db.stream(query_stream).series.subsequence(start, start + m)
        params = SimilarityParams()
        oracle = reference_matches(
            db,
            query,
            query_stream,
            threshold=threshold,
            max_matches=max_matches,
            params=params,
        )
        for use_index in (True, False):
            engine = SubsequenceMatcher(
                db, params, use_index=use_index
            ).find_matches(
                query,
                query_stream,
                threshold=threshold,
                max_matches=max_matches,
            )
            check_equivalence(engine, oracle, max_matches=max_matches)

    @settings(max_examples=40, deadline=None)
    @given(scenario=_scenario())
    def test_anonymous_query_and_restriction(self, scenario):
        """No query stream (external query) and patient restriction."""
        streams, m, start, threshold, max_matches = scenario
        db = _build_db(streams)
        query = db.stream(db.stream_ids[0]).series.subsequence(
            start, start + m
        )
        oracle = reference_matches(
            db, query, None, threshold=threshold, restrict_patients=["P0"]
        )
        engine = SubsequenceMatcher(db).find_matches(
            query, None, threshold=threshold, restrict_patients=["P0"]
        )
        check_equivalence(engine, oracle)
        assert all(
            db.stream(match.stream_id).patient_id == "P0" for match in engine
        )


class TestReferenceDistance:
    def test_signature_mismatch_is_infinite(self):
        # Signatures cover segment states (the final vertex only closes
        # the last segment), so the mismatch must be on an inner vertex.
        a = _series_from([1, 2, 3], [0, 5, 0], [0, 1, 0]).subsequence(0, 3)
        b = _series_from([1, 2, 3], [0, 5, 0], [0, 0, 0]).subsequence(0, 3)
        assert reference_distance(a, b) == math.inf

    def test_identical_windows_are_at_distance_zero(self):
        a = _series_from([1, 2, 3], [0, 5, 0], [0, 1, 0]).subsequence(0, 3)
        assert reference_distance(a, a) == pytest.approx(0.0)

    def test_source_relation_scales_distance(self):
        params = SimilarityParams()
        a = _series_from([1, 2, 3], [0, 5, 0], [0, 1, 0]).subsequence(0, 3)
        b = _series_from([1, 2.5, 3], [0, 7, 0], [0, 1, 0]).subsequence(0, 3)
        same = reference_distance(a, b, params, SourceRelation.SAME_SESSION)
        other = reference_distance(a, b, params, SourceRelation.OTHER_PATIENT)
        assert same != other  # the w_s weight must be applied


class TestCheckEquivalence:
    def _match(self, stream="S0", start=0, distance=1.0):
        return Match(
            stream_id=stream,
            start=start,
            n_vertices=3,
            distance=distance,
            relation=SourceRelation.OTHER_PATIENT,
        )

    def test_accepts_identical(self):
        matches = [self._match(), self._match(start=4, distance=2.0)]
        check_equivalence(matches, matches)

    def test_rejects_missing_match(self):
        oracle = [self._match(), self._match(start=4, distance=2.0)]
        with pytest.raises(EquivalenceError):
            check_equivalence(oracle[:1], oracle)

    def test_rejects_duplicate_engine_keys(self):
        oracle = [self._match()]
        with pytest.raises(EquivalenceError):
            check_equivalence([self._match(), self._match()], oracle)

    def test_rejects_distance_drift(self):
        oracle = [self._match(distance=1.0)]
        engine = [self._match(distance=1.1)]
        with pytest.raises(EquivalenceError):
            check_equivalence(engine, oracle)

    def test_rejects_misordered_engine(self):
        oracle = [self._match(), self._match(start=4, distance=2.0)]
        engine = [oracle[1], oracle[0]]
        with pytest.raises(EquivalenceError):
            check_equivalence(engine, oracle)

    def test_tolerates_float_ulps(self):
        oracle = [self._match(distance=1.0)]
        engine = [self._match(distance=1.0 + 1e-12)]
        check_equivalence(engine, oracle)


class TestReferenceSegmenter:
    def test_agrees_with_production_on_clean_signal(self):
        t, x = clean_cycles(n_cycles=6)
        production = segment_signal(t, x)
        reference = reference_segment(t, x)
        assert len(reference) == len(production)
        np.testing.assert_array_equal(
            reference.states, production.states
        )
        np.testing.assert_allclose(reference.times, production.times)
        np.testing.assert_allclose(
            reference.positions, production.positions
        )

    def test_agrees_with_production_on_noisy_signal(self):
        t, x = clean_cycles(n_cycles=6)
        rng = np.random.default_rng(5)
        x = x + rng.normal(0.0, 0.4, len(x))
        production = segment_signal(t, x)
        reference = reference_segment(t, x)
        assert len(reference) == len(production)
        np.testing.assert_array_equal(reference.states, production.states)
        np.testing.assert_allclose(reference.times, production.times)


class TestPLRInvariants:
    def test_accepts_regular_series(self):
        t, x = clean_cycles(n_cycles=4)
        check_plr_invariants(segment_signal(t, x))

    def test_rejects_non_monotone_times(self):
        # append() refuses out-of-order vertices, so corrupt the series
        # in place — what a damaged snapshot would look like.
        series = _series_from([1.0, 2.0, 3.0], [0, 1, 0], [0, 1, 2])
        series._times[1] = 5.0
        series._cache.clear()
        with pytest.raises(EquivalenceError):
            check_plr_invariants(series)

    def test_rejects_non_finite_positions(self):
        series = _series_from([1.0, 2.0], [0.0, math.nan], [0, 1])
        with pytest.raises(EquivalenceError):
            check_plr_invariants(series)

    def test_rejects_illegal_transition(self):
        # EX -> IN skips EOE: not a legal respiratory move.
        series = _series_from([1.0, 2.0, 3.0], [0, 1, 0], [0, 2, 0])
        with pytest.raises(EquivalenceError):
            check_plr_invariants(series)

    def test_allows_terminal_duplicate_state(self):
        # finish() closes the open segment by repeating its state.
        series = _series_from(
            [1.0, 2.0, 3.0, 4.0], [0, 1, 0, 1], [0, 1, 2, 2]
        )
        check_plr_invariants(series)
