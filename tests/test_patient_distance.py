"""Tests for Definition 4 (patient distance) and the distance matrices."""

import numpy as np
import pytest

from repro.core.patient_distance import (
    impute_infinite,
    patient_distance,
    patient_distance_matrix,
    stream_distance_matrix,
)
from repro.core.stream_distance import StreamDistanceConfig
from repro.database.store import MotionDatabase

from test_stream_distance import stream


@pytest.fixture
def db():
    database = MotionDatabase()
    # Two similar patients (amplitude ~10) and one distinct (16).
    for pid, amp in (("PA", 10.0), ("PB", 10.5), ("PC", 16.0)):
        database.add_patient(pid)
        for k in range(2):
            database.add_stream(
                pid,
                f"S{k:02d}",
                series=stream(amp, jitter=0.5, seed=hash((pid, k)) % 1000),
            )
    return database


CONFIG = StreamDistanceConfig(top_p=3)


class TestPatientDistance:
    def test_symmetric(self, db):
        assert patient_distance(db, "PA", "PB", CONFIG) == pytest.approx(
            patient_distance(db, "PB", "PA", CONFIG)
        )

    def test_similar_patients_closer(self, db):
        d_ab = patient_distance(db, "PA", "PB", CONFIG)
        d_ac = patient_distance(db, "PA", "PC", CONFIG)
        assert d_ab < d_ac

    def test_self_distance_uses_distinct_streams(self, db):
        d_self = patient_distance(db, "PA", "PA", CONFIG)
        assert np.isfinite(d_self)
        assert d_self < patient_distance(db, "PA", "PC", CONFIG)

    def test_self_distance_single_stream(self, db):
        db.add_patient("PD")
        db.add_stream("PD", "S00", series=stream(9.0))
        assert np.isfinite(patient_distance(db, "PD", "PD", CONFIG))

    def test_missing_streams_rejected(self, db):
        db.add_patient("PE")
        with pytest.raises(ValueError):
            patient_distance(db, "PA", "PE", CONFIG)


class TestMatrices:
    def test_stream_matrix_structure(self, db):
        ids, matrix = stream_distance_matrix(db, CONFIG)
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        # Self-distance is not exactly zero (top-p keeps near neighbours
        # beyond the identical window) but every stream is closest to
        # itself.
        off = matrix + np.diag(np.full(len(matrix), np.inf))
        assert np.all(np.diag(matrix) < off.min(axis=1))

    def test_patient_matrix_structure(self, db):
        ids, matrix = patient_distance_matrix(db, CONFIG)
        assert ids == ("PA", "PB", "PC")
        np.testing.assert_allclose(matrix, matrix.T)
        # PC is the outlier patient.
        assert matrix[0, 2] > matrix[0, 1]

    def test_subset_selection(self, db):
        ids, matrix = patient_distance_matrix(
            db, CONFIG, patient_ids=("PA", "PC")
        )
        assert ids == ("PA", "PC")
        assert matrix.shape == (2, 2)


class TestImputeInfinite:
    def test_replaces_inf(self):
        matrix = np.array([[0.0, np.inf], [np.inf, 0.0]])
        fixed = impute_infinite(np.array([[0.0, 2.0], [2.0, np.inf]]))
        assert np.isfinite(fixed).all()
        assert fixed[1, 1] == pytest.approx(3.0)

    def test_all_inf_rejected(self):
        with pytest.raises(ValueError):
            impute_infinite(np.full((2, 2), np.inf))

    def test_copy_not_inplace(self):
        matrix = np.array([[0.0, np.inf], [np.inf, 0.0]])
        impute_infinite(matrix)
        assert np.isinf(matrix).any()
