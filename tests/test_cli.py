"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "cohort.json"
    code = main([
        "simulate", "--patients", "2", "--sessions", "2",
        "--duration", "50", "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.json"])
        assert args.patients == 3 and args.sessions == 2

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_serve_replay_defaults(self):
        args = build_parser().parse_args(["serve-replay", "x.json"])
        assert args.live == 3 and args.latency == 0.2


class TestCommands:
    def test_simulate_writes_snapshot(self, snapshot):
        assert snapshot.exists()
        assert snapshot.stat().st_size > 1000

    def test_inspect(self, snapshot, capsys):
        assert main(["inspect", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "P000" in out and "streams" in out

    def test_replay(self, snapshot, capsys):
        code = main([
            "replay", str(snapshot), "--patient", "P000",
            "--duration", "30", "--horizon", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean error" in out

    def test_replay_unknown_patient(self, snapshot):
        assert main(["replay", str(snapshot), "--patient", "ZZZ"]) == 2

    def test_cluster(self, snapshot, capsys):
        assert main(["cluster", str(snapshot), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "cluster 0" in out

    def test_serve_replay(self, snapshot, capsys):
        code = main([
            "serve-replay", str(snapshot), "--live", "2",
            "--duration", "20", "--latency", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 concurrent sessions" in out
        assert "frames predicted at 200 ms" in out

    def test_serve_replay_too_few_patients(self, snapshot, capsys):
        assert main(["serve-replay", str(snapshot), "--live", "9"]) == 2
        assert "only 2 patients" in capsys.readouterr().err
