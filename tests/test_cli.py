"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "cohort.json"
    code = main([
        "simulate", "--patients", "2", "--sessions", "2",
        "--duration", "50", "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.json"])
        assert args.patients == 3 and args.sessions == 2

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_serve_replay_defaults(self):
        args = build_parser().parse_args(["serve-replay", "x.json"])
        assert args.live == 3 and args.latency == 0.2


class TestCommands:
    def test_simulate_writes_snapshot(self, snapshot):
        assert snapshot.exists()
        assert snapshot.stat().st_size > 1000

    def test_inspect(self, snapshot, capsys):
        assert main(["inspect", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "P000" in out and "streams" in out

    def test_replay(self, snapshot, capsys):
        code = main([
            "replay", str(snapshot), "--patient", "P000",
            "--duration", "30", "--horizon", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean error" in out

    def test_replay_unknown_patient(self, snapshot):
        assert main(["replay", str(snapshot), "--patient", "ZZZ"]) == 2

    def test_cluster(self, snapshot, capsys):
        assert main(["cluster", str(snapshot), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "cluster 0" in out

    def test_serve_replay(self, snapshot, capsys):
        code = main([
            "serve-replay", str(snapshot), "--live", "2",
            "--duration", "20", "--latency", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 concurrent sessions" in out
        assert "frames predicted at 200 ms" in out

    def test_serve_replay_too_few_patients(self, snapshot, capsys):
        assert main(["serve-replay", str(snapshot), "--live", "9"]) == 2
        assert "only 2 patients" in capsys.readouterr().err


class TestShardedServeReplay:
    def test_workers_flag_defaults_to_single_process(self):
        args = build_parser().parse_args(["serve-replay", "x.json"])
        assert args.workers == 1

    def test_serve_replay_sharded(self, snapshot, capsys):
        code = main([
            "serve-replay", str(snapshot), "--live", "2",
            "--duration", "10", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "across 2 shard workers" in out
        assert "[shard" in out


class TestMatchModeFlag:
    def test_defaults_to_rigid(self):
        for command in ("serve-replay", "metrics"):
            args = build_parser().parse_args([command, "x.json"])
            assert args.match_mode == "rigid"

    def test_known_modes_parse(self):
        for mode in ("rigid", "normalized", "warped"):
            args = build_parser().parse_args(
                ["serve-replay", "x.json", "--match-mode", mode]
            )
            assert args.match_mode == mode

    @pytest.mark.parametrize("command", ["serve-replay", "metrics"])
    def test_unknown_mode_fails_clearly(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "x.json", "--match-mode", "fuzzy"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "fuzzy" in err

    def test_serve_replay_normalized_mode(self, snapshot, capsys):
        code = main([
            "serve-replay", str(snapshot), "--live", "2",
            "--duration", "20", "--match-mode", "normalized",
        ])
        assert code == 0
        assert "served 2 concurrent sessions" in capsys.readouterr().out


class TestCompact:
    def test_compact_logged_directory(self, tmp_path, capsys):
        from repro.database.backend import LoggedBackend
        from repro.database.store import MotionDatabase

        from conftest import make_series

        directory = tmp_path / "store"
        db = MotionDatabase(backend=LoggedBackend(directory))
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(cycles=6))
        db.close()

        assert main(["compact", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "snapshot 1" in out and "1 streams" in out

    def test_compact_shard_root(self, tmp_path, capsys):
        from repro.analysis.experiments import CohortConfig, build_cohort
        from repro.service.sharding import partition_database

        cohort = build_cohort(CohortConfig(
            n_patients=2, sessions_per_patient=1,
            session_duration=30.0, live_duration=20.0, seed=4,
        ))
        partition_database(cohort.db, tmp_path, 2)

        assert main(["compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard 0:" in out and "shard 1:" in out

    def test_compact_rejects_unrecognised_directory(self, tmp_path, capsys):
        # Neither manifest.json nor shard-* present: refuse loudly
        # instead of silently creating an empty backend there.
        assert main(["compact", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "neither a logged database" in err
        assert "shard-*" in err
        assert not any(tmp_path.iterdir())

    def test_compact_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["compact", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestAnalyticsCommands:
    @pytest.fixture
    def store(self, tmp_path):
        """A compacted logged directory with two identical streams."""
        from repro.database.backend import LoggedBackend
        from repro.database.store import MotionDatabase

        from conftest import make_series

        directory = tmp_path / "store"
        db = MotionDatabase(backend=LoggedBackend(directory))
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(cycles=6))
        db.add_stream("PA", "S01", series=make_series(cycles=6))
        db.close()
        assert main(["compact", str(directory)]) == 0
        return directory

    def test_motifs_text(self, store, capsys):
        assert main(["motifs", str(store), "--length", "4"]) == 0
        out = capsys.readouterr().out
        assert "windows of length 4" in out
        assert "#1 PA/S0" in out and "matches" in out

    def test_motifs_json(self, store, capsys):
        import json

        code = main(["motifs", str(store), "--length", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["length"] == 4 and payload["n_streams"] == 2
        assert payload["motifs"]
        top = payload["motifs"][0]
        assert top["count"] == len(top["matches"]) > 0

    def test_anomalies_text(self, store, capsys):
        assert main(["anomalies", str(store), "--length", "4"]) == 0
        out = capsys.readouterr().out
        # Twin streams: every window matches its counterpart.
        assert "0/" in out and "are anomalous" in out

    def test_anomalies_json(self, store, capsys):
        import json

        code = main(["anomalies", str(store), "--length", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_anomalies"] == 0
        assert payload["fleet_score"] == 0.0
        assert len(payload["streams"]) == 2

    @pytest.mark.parametrize("command", ["motifs", "anomalies"])
    def test_rejects_unrecognised_directory(self, command, tmp_path, capsys):
        assert main([command, str(tmp_path)]) == 2
        assert "neither a logged database" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["motifs", "anomalies"])
    def test_rejects_missing_directory(self, command, tmp_path, capsys):
        assert main([command, str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err
