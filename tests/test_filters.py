"""Tests for the online pre-filters (cardiac notch, despike, chain)."""

import numpy as np
import pytest

from repro.core.filters import (
    FilterChain,
    MedianDespike,
    MovingAverage,
    NotchFilter,
)
from repro.core.segmentation import segment_signal

from tests_support import clean_cycles


def run_filter(filt, times, values):
    return np.array([filt(float(t), np.atleast_1d(v))[0]
                     for t, v in zip(times, values)])


class TestMedianDespike:
    def test_removes_isolated_spike(self):
        t = np.arange(20) / 30.0
        x = np.zeros(20)
        x[10] = 50.0
        out = run_filter(MedianDespike(3), t, x)
        assert np.max(np.abs(out)) == 0.0

    def test_preserves_trend(self):
        t = np.arange(30) / 30.0
        x = np.linspace(0, 10, 30)
        out = run_filter(MedianDespike(3), t, x)
        # Median-of-3 lags a ramp by one sample.
        np.testing.assert_allclose(out[2:], x[1:-1])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MedianDespike(0)
        with pytest.raises(ValueError):
            MedianDespike(4)

    def test_reset(self):
        filt = MedianDespike(3)
        filt(0.0, np.array([100.0]))
        filt.reset()
        assert filt(1.0, np.array([1.0]))[0] == 1.0


class TestNotchFilter:
    def test_attenuates_notch_frequency(self):
        fs, f0 = 30.0, 1.2
        t = np.arange(0, 60, 1 / fs)
        x = np.sin(2 * np.pi * f0 * t)
        out = run_filter(NotchFilter(f0, fs, bandwidth=0.4), t, x)
        # After settling, the cardiac tone is strongly attenuated.
        assert np.std(out[300:]) < 0.25 * np.std(x[300:])

    def test_passes_breathing_band(self):
        fs = 30.0
        t = np.arange(0, 60, 1 / fs)
        x = np.sin(2 * np.pi * 0.25 * t)  # 4 s breathing cycle
        out = run_filter(NotchFilter(1.2, fs), t, x)
        assert np.std(out[300:]) > 0.9 * np.std(x[300:])

    def test_unit_dc_gain(self):
        fs = 30.0
        t = np.arange(0, 20, 1 / fs)
        x = np.full_like(t, 7.0)
        out = run_filter(NotchFilter(1.2, fs), t, x)
        assert out[-1] == pytest.approx(7.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NotchFilter(frequency=20.0, sample_rate=30.0)
        with pytest.raises(ValueError):
            NotchFilter(bandwidth=0.0)


class TestMovingAverage:
    def test_smooths(self):
        t = np.arange(100) / 30.0
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 100)
        out = run_filter(MovingAverage(5), t, x)
        assert np.std(out[10:]) < np.std(x[10:])

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(0)


class TestFilterChain:
    def test_applies_in_order(self):
        t = np.arange(40) / 30.0
        x = np.zeros(40)
        x[20] = 50.0
        chain = FilterChain([MedianDespike(3), MovingAverage(3)])
        out = run_filter(chain, t, x)
        assert np.max(np.abs(out)) < 1.0
        assert len(chain) == 2

    def test_reset_propagates(self):
        chain = FilterChain([MedianDespike(3), MovingAverage(3)])
        chain(0.0, np.array([100.0]))
        chain.reset()
        assert chain(1.0, np.array([2.0]))[0] == 2.0


class TestSegmenterIntegration:
    def test_notch_reduces_cardiac_vertex_noise(self):
        t, x = clean_cycles(n_cycles=10)
        noisy = x + 0.8 * np.sin(2 * np.pi * 1.2 * t)
        plain = segment_signal(t, noisy)
        notched = segment_signal(
            t, noisy, prefilter=NotchFilter(1.2, 30.0)
        )
        clean = segment_signal(t, x)

        def vertex_noise(series):
            # Compare each vertex position against the clean PLR.
            errors = [
                abs(series.positions[i][0] - clean.position_at(series.times[i])[0])
                for i in range(3, len(series) - 1)
            ]
            return float(np.mean(errors))

        assert vertex_noise(notched) < vertex_noise(plain)

    def test_prefilter_threaded_through_ingestor(self):
        from repro.database.ingest import StreamIngestor
        from repro.database.store import MotionDatabase

        db = MotionDatabase()
        db.add_patient("PA")
        ingestor = StreamIngestor(db, "PA", "S00")
        ingestor.segmenter.prefilter = MedianDespike(3)
        t, x = clean_cycles(n_cycles=3)
        ingestor.extend(t, x)
        assert len(ingestor.series) > 5
