"""Sharded serving-tier tests: router, partitioning, scatter/gather.

The centrepiece mirrors the service layer's isolation contract one
level up: a :class:`~repro.service.sharding.ShardCoordinator` scattering
a tenant fleet over ``REPRO_TEST_WORKERS`` worker processes must produce
**byte-identical** matches and predictions to one in-process
:class:`~repro.service.manager.SessionManager` hosting the same fleet —
and must keep doing so across a worker crash recovered by journal
replay plus frame-log re-feed.

Worker counts come from the ``REPRO_TEST_WORKERS`` environment variable
(default 2) so CI can matrix the same tests over wider fleets.
"""

import copy
import os
import signal

import numpy as np
import pytest

from repro.analysis.experiments import CohortConfig, build_cohort
from repro.core.matching import Match, SourceRelation
from repro.core.online import OnlineSessionConfig
from repro.core.similarity import MatchMode, SimilarityParams
from repro.database.store import MotionDatabase
from repro.obs import Telemetry
from repro.obs.exposition import registry_snapshot_from_payload
from repro.service import (
    PipelineBuilder,
    SessionManager,
    ShardCoordinator,
    ShardRouter,
    partition_database,
)
from repro.signals.respiratory import RespiratorySimulator, SessionConfig

from conftest import make_series

N_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
LATENCY = 0.2

COHORT = CohortConfig(
    n_patients=4,
    sessions_per_patient=2,
    session_duration=30.0,
    live_duration=20.0,
    seed=5,
)
TENANTS_PER_PATIENT = 2
LIVE_DURATION = 10.0


# -- router --------------------------------------------------------------------


class TestShardRouter:
    def test_assignment_is_deterministic_across_instances(self):
        a = ShardRouter(4)
        b = ShardRouter(4)
        for i in range(50):
            pid = f"P{i:03d}"
            assert a.shard_of(pid) == b.shard_of(pid)

    def test_partition_covers_every_patient_once(self):
        router = ShardRouter(3)
        patients = [f"P{i:03d}" for i in range(40)]
        groups = router.partition(patients)
        assert set(groups) == {0, 1, 2}
        flat = [pid for group in groups.values() for pid in group]
        assert sorted(flat) == sorted(patients)

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert all(
            router.shard_of(f"P{i:03d}") == 0 for i in range(20)
        )

    def test_load_spreads_over_shards(self):
        router = ShardRouter(4)
        groups = router.partition(f"P{i:04d}" for i in range(400))
        # Consistent hashing with vnodes: no shard starves or hogs.
        assert all(len(group) >= 40 for group in groups.values())

    def test_ring_stability_under_resharding(self):
        # Growing the ring from 2 to 3 shards must leave most patients
        # on their old shard (the consistent-hashing contract).
        patients = [f"P{i:04d}" for i in range(300)]
        before = ShardRouter(2)
        after = ShardRouter(3)
        moved = sum(
            before.shard_of(pid) != after.shard_of(pid) for pid in patients
        )
        assert moved / len(patients) < 0.6

    def test_rejects_invalid_shapes(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, vnodes=0)


# -- partitioning --------------------------------------------------------------


class TestPartitionDatabase:
    def test_partition_colocates_each_patient_whole(self, tmp_path):
        cohort = build_cohort(COHORT)
        router = partition_database(cohort.db, tmp_path, N_WORKERS)
        seen_streams = []
        total_vertices = 0
        for shard in range(N_WORKERS):
            shard_db = MotionDatabase.open_shard(tmp_path, shard)
            for patient_id in shard_db.patient_ids:
                assert router.shard_of(patient_id) == shard
            seen_streams.extend(shard_db.stream_ids)
            total_vertices += shard_db.n_vertices
            shard_db.close()
        assert sorted(seen_streams) == sorted(cohort.db.stream_ids)
        assert total_vertices == cohort.db.n_vertices


# -- fleet serving -------------------------------------------------------------


def build_fleet():
    """Historical cohort + a small multi-session live fleet."""
    cohort = build_cohort(COHORT)
    session_config = SessionConfig(duration=LIVE_DURATION)
    raws = {}
    for i, profile in enumerate(cohort.profiles):
        for k in range(TENANTS_PER_PATIENT):
            raws[(profile.patient_id, f"T{k:02d}")] = RespiratorySimulator(
                profile, session_config
            ).generate_session(400 + k, seed=800 + 11 * i + k)
    return cohort.db, raws


def serve_single_process(db, raws, builder):
    manager = SessionManager(copy.deepcopy(db), builder=builder)
    by_stream = {}
    for (patient_id, session_id), raw in raws.items():
        session = manager.open_session(patient_id, session_id)
        by_stream[session.stream_id] = raw
    times = next(iter(by_stream.values())).times
    predictions = {sid: [] for sid in by_stream}
    for i, t in enumerate(times):
        manager.tick(
            float(t), {sid: raw.values[i] for sid, raw in by_stream.items()}
        )
        served = manager.predict_ahead_all(LATENCY)
        for sid in by_stream:
            predictions[sid].append(served[sid])
    matches = {sid: list(manager.session(sid).matches) for sid in by_stream}
    manager.close(keep_streams=False)
    return predictions, matches


def serve_sharded(
    db,
    raws,
    builder,
    root,
    n_workers=N_WORKERS,
    telemetry=None,
    worker_telemetry=False,
    faults=None,
    compact_at=(),
    kill=(),
    capture=None,
):
    """Drive a sharded fleet through the full tick/predict loop.

    ``compact_at`` lists tick indices at which the coordinator compacts
    the fleet (checkpointing sessions and truncating frame logs);
    ``kill`` lists ``(shard, tick)`` pairs hard-killed with SIGKILL just
    before that tick; ``capture``, when a dict, receives the final
    per-shard frame-log lengths and worker-side stream digests.
    """
    partition_database(db, root, n_workers)
    coordinator = ShardCoordinator(
        root,
        n_workers,
        builder=builder,
        telemetry=telemetry,
        worker_telemetry=worker_telemetry,
        faults=faults,
    )
    try:
        by_stream = {}
        for (patient_id, session_id), raw in raws.items():
            sid = coordinator.open_session(patient_id, session_id)
            by_stream[sid] = raw
        times = next(iter(by_stream.values())).times
        predictions = {sid: [] for sid in by_stream}
        for i, t in enumerate(times):
            if i in compact_at:
                coordinator.compact()
            for shard, at in kill:
                if i == at:
                    os.kill(coordinator._procs[shard].pid, signal.SIGKILL)
            coordinator.tick(
                float(t),
                {sid: raw.values[i] for sid, raw in by_stream.items()},
            )
            served = coordinator.predict_ahead_all(LATENCY)
            for sid in by_stream:
                predictions[sid].append(served[sid])
        matches = {sid: coordinator.matches_of(sid) for sid in by_stream}
        worker_snaps = (
            coordinator.worker_snapshots() if worker_telemetry else None
        )
        fleet = (
            coordinator.fleet_registry() if worker_telemetry else None
        )
        if capture is not None:
            capture["frame_log_lens"] = {
                shard: len(coordinator._frame_log[shard])
                for shard in range(n_workers)
            }
            digests = {}
            for shard in range(n_workers):
                digests.update(coordinator.digests(shard))
            capture["digests"] = digests
    finally:
        coordinator.close()
    return predictions, matches, fleet, worker_snaps


def assert_identical_predictions(a, b):
    assert set(a) == set(b)
    for sid in a:
        assert len(a[sid]) == len(b[sid])
        for x, y in zip(a[sid], b[sid]):
            assert (x is None) == (y is None)
            if x is not None:
                assert np.array_equal(x, y)


class TestShardedServeIdentity:
    def test_sharded_fleet_is_byte_identical_to_single_process(
        self, tmp_path
    ):
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        p_solo, m_solo = serve_single_process(db, raws, builder)
        p_sharded, m_sharded, _, _ = serve_sharded(
            db, raws, builder, tmp_path
        )
        assert_identical_predictions(p_solo, p_sharded)
        assert m_solo == m_sharded
        # The workload must actually exercise serving, not just warm up.
        assert any(m for m in m_solo.values())
        assert any(
            p is not None for series in p_solo.values() for p in series
        )

    @pytest.mark.parametrize(
        "similarity",
        [
            SimilarityParams(mode=MatchMode.NORMALIZED),
            SimilarityParams(mode=MatchMode.WARPED, warp_band=1),
        ],
        ids=["normalized", "warped"],
    )
    def test_sharded_fleet_identical_under_non_rigid_modes(
        self, tmp_path, similarity
    ):
        """The wire protocol carries the match mode: same contract per mode."""
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(
            OnlineSessionConfig(similarity=similarity)
        )
        p_solo, m_solo = serve_single_process(db, raws, builder)
        p_sharded, m_sharded, _, _ = serve_sharded(
            db, raws, builder, tmp_path
        )
        assert_identical_predictions(p_solo, p_sharded)
        assert m_solo == m_sharded
        assert any(m for m in m_solo.values())


class TestWorkerCrashRecovery:
    def test_crash_mid_serve_recovers_byte_identically(self, tmp_path):
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        golden, m_golden, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "golden"
        )

        # Crash the shard that owns the first patient, mid-stream.
        crash_shard = ShardRouter(N_WORKERS).shard_of(
            next(iter(raws))[0]
        )
        telemetry = Telemetry()
        crashed, m_crashed, _, _ = serve_sharded(
            db,
            raws,
            builder,
            tmp_path / "crashed",
            telemetry=telemetry,
            faults={crash_shard: {"site": "log.append", "at": 10}},
        )
        merged = telemetry.snapshot().merged
        assert merged.counter("router.worker_crashes") == 1
        assert merged.counter("router.recoveries") == 1
        assert_identical_predictions(golden, crashed)
        assert m_golden == m_crashed


def _n_live_ticks(raws):
    return len(next(iter(raws.values())).times)


class TestCompactionCheckpointRecovery:
    """Frame-log retention: compact() checkpoints sessions and truncates.

    The retention invariant under test: after ``compact()`` each shard's
    frame log holds only frames fed *since* the compaction watermark
    (the checkpoint replaces the prefix), and checkpoint + suffix replay
    to byte-identical fleet state after a hard worker kill.
    """

    def test_compact_truncates_frame_logs_at_watermark(self, tmp_path):
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        n_ticks = _n_live_ticks(raws)
        mid = n_ticks // 2
        capture = {}
        serve_sharded(
            db, raws, builder, tmp_path,
            compact_at=(mid,), capture=capture,
        )
        # Without truncation every log would hold all n_ticks frames.
        assert capture["frame_log_lens"]
        for shard, length in capture["frame_log_lens"].items():
            assert length <= n_ticks - mid, (shard, length)

    def test_kill_after_compact_recovers_byte_identically(self, tmp_path):
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        n_ticks = _n_live_ticks(raws)
        mid = n_ticks // 2
        golden_capture = {}
        golden, m_golden, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "golden",
            compact_at=(mid,), capture=golden_capture,
        )

        # SIGKILL (not a simulated fault): recovery must rebuild the
        # shard from checkpoint + post-watermark frame-log suffix only.
        crash_shard = ShardRouter(N_WORKERS).shard_of(next(iter(raws))[0])
        telemetry = Telemetry()
        crash_capture = {}
        crashed, m_crashed, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "crashed",
            telemetry=telemetry,
            compact_at=(mid,),
            kill=[(crash_shard, mid + 20)],
            capture=crash_capture,
        )
        merged = telemetry.snapshot().merged
        assert merged.counter("router.worker_crashes") == 1
        assert merged.counter("router.recoveries") == 1
        assert_identical_predictions(golden, crashed)
        assert m_golden == m_crashed
        assert golden_capture["digests"] == crash_capture["digests"]
        for shard, length in crash_capture["frame_log_lens"].items():
            assert length <= n_ticks - mid, (shard, length)

    def test_second_kill_replays_from_same_checkpoint(self, tmp_path):
        # The re-journaled checkpoint state must survive a *second*
        # crash of the same shard without a new compact() in between.
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        mid = _n_live_ticks(raws) // 2
        golden, m_golden, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "golden", compact_at=(mid,),
        )
        crash_shard = ShardRouter(N_WORKERS).shard_of(next(iter(raws))[0])
        telemetry = Telemetry()
        crashed, m_crashed, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "crashed",
            telemetry=telemetry,
            compact_at=(mid,),
            kill=[(crash_shard, mid + 15), (crash_shard, mid + 45)],
        )
        merged = telemetry.snapshot().merged
        assert merged.counter("router.worker_crashes") == 2
        assert merged.counter("router.recoveries") == 2
        assert_identical_predictions(golden, crashed)
        assert m_golden == m_crashed


class TestCompactionCrashRetry:
    def test_worker_death_mid_compaction_is_retried_once(self, tmp_path):
        """compact() recovers a worker that dies compacting and retries."""
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        n_ticks = _n_live_ticks(raws)
        mid = n_ticks // 2
        golden, m_golden, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "golden", compact_at=(mid,),
        )

        crash_shard = ShardRouter(N_WORKERS).shard_of(next(iter(raws))[0])
        telemetry = Telemetry()
        capture = {}
        crashed, m_crashed, _, _ = serve_sharded(
            db, raws, builder, tmp_path / "crashed",
            telemetry=telemetry,
            compact_at=(mid,),
            faults={crash_shard: {"site": "compact.columns", "at": 0}},
            capture=capture,
        )
        merged = telemetry.snapshot().merged
        assert merged.counter("router.worker_crashes") == 1
        assert merged.counter("router.recoveries") == 1
        assert_identical_predictions(golden, crashed)
        assert m_golden == m_crashed
        for shard, length in capture["frame_log_lens"].items():
            assert length <= n_ticks - mid, (shard, length)


class TestFleetRegistry:
    def test_fleet_registry_merges_worker_counters_exactly(self, tmp_path):
        db, raws = build_fleet()
        builder = PipelineBuilder.from_session_config(OnlineSessionConfig())
        _, _, fleet, worker_snaps = serve_sharded(
            db, raws, builder, tmp_path, worker_telemetry=True
        )
        assert set(worker_snaps) == set(range(N_WORKERS))
        per_worker = {
            shard: registry_snapshot_from_payload(payload["merged"])
            for shard, payload in worker_snaps.items()
        }
        # Exact-count oracle: every frame fed lands in exactly one
        # worker's service.frames counter, and the fleet view is the
        # arithmetic sum of the per-worker registries.
        n_frames = len(next(iter(raws.values())).times)
        assert fleet.counter("service.frames") == len(raws) * n_frames
        for name in ("service.frames", "service.ticks", "shard.find_serves"):
            assert fleet.counter(name) == sum(
                snap.counter(name) for snap in per_worker.values()
            )
        # Introspection is itself RPC traffic: the fleet snapshot is
        # taken exactly one RPC (the fleet_registry call) after each
        # per-worker snapshot.
        assert fleet.counter("shard.rpcs") == N_WORKERS + sum(
            snap.counter("shard.rpcs") for snap in per_worker.values()
        )


# -- foreign-series pooling ----------------------------------------------------


class TestForeignSeriesPooling:
    def test_adoption_reuses_series_shipped_for_another_tenant(self):
        """The coordinator ships each foreign stream to a shard once;
        a later adoption by a *different* tenant must resolve the same
        stream from the manager-level pool (regression: per-session
        caches dropped pooled series and predict raised ``KeyError``)."""
        db = MotionDatabase()
        db.add_patient("PA")
        db.add_patient("PB")
        manager = SessionManager(db, builder=PipelineBuilder(min_matches=1))
        session_a = manager.open_session("PA", "LIVE")
        session_b = manager.open_session("PB", "LIVE")
        foreign = make_series(cycles=3)
        match = Match(
            stream_id="PX/S00",
            start=0,
            n_vertices=4,
            distance=0.5,
            relation=SourceRelation.OTHER_PATIENT,
        )
        manager.adopt_matches(
            session_a.stream_id, [match], {"PX/S00": foreign}
        )
        # Second tenant adopts the same match with *no* series payload.
        manager.adopt_matches(session_b.stream_id, [match], None)
        for session in (session_a, session_b):
            resolved = session._series_of("PX/S00")
            assert np.array_equal(resolved.times, foreign.times)
        manager.close(keep_streams=False)
