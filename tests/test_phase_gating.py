"""Tests for state prediction and phase-based gating."""

import numpy as np
import pytest

from repro.core.matching import SubsequenceMatcher
from repro.core.model import PLRSeries, Vertex
from repro.core.prediction import OnlinePredictor
from repro.database.store import MotionDatabase
from repro.gating.phase import simulate_phase_gating, states_at

from conftest import EOE, EX, IN


def periodic_series(cycles, amplitude=10.0, period=3.0):
    series = PLRSeries()
    t = 0.0
    third = period / 3.0
    for _ in range(cycles):
        series.append(Vertex(t, (0.0,), IN))
        series.append(Vertex(t + third, (amplitude,), EX))
        series.append(Vertex(t + 2 * third, (0.0,), EOE))
        t += period
    series.append(Vertex(t, (0.0,), IN))
    return series


@pytest.fixture
def setup():
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_stream("PA", "HIST", series=periodic_series(8))
    live = periodic_series(3)
    db.add_stream("PA", "LIVE", series=live)
    matcher = SubsequenceMatcher(db)
    predictor = OnlinePredictor(db, matcher, min_matches=1)
    return db, predictor, live


class TestPredictState:
    def test_predicts_next_state_exactly(self, setup):
        db, predictor, live = setup
        query = live.suffix(7)
        # Query ends at an IN vertex: 0.5 s later the stream is mid-inhale.
        result = predictor.predict_state(query, "PA/LIVE", horizon=0.5)
        assert result is not None
        state, confidence = result
        assert state is IN
        assert confidence == pytest.approx(1.0)

    def test_predicts_across_transition(self, setup):
        db, predictor, live = setup
        query = live.suffix(7)
        # 1.5 s later the inhale (1 s) has ended: the stream is exhaling.
        state, confidence = predictor.predict_state(
            query, "PA/LIVE", horizon=1.5
        )
        assert state is EX
        assert confidence > 0.9

    def test_none_without_matches(self, setup):
        db, _, live = setup
        strict = OnlinePredictor(
            db, SubsequenceMatcher(db), min_matches=10_000
        )
        assert strict.predict_state(live.suffix(7), "PA/LIVE", 0.2) is None


class TestStatesAt:
    def test_reads_segment_states(self):
        series = periodic_series(2)
        states = states_at(series, [0.5, 1.5, 2.5])
        assert states == [IN, EX, EOE]


class TestSimulatePhaseGating:
    def test_perfect_decisions(self):
        truth = [IN, EX, EOE, EOE, IN, EX, EOE]
        decisions = [s is EOE for s in truth]
        report = simulate_phase_gating(truth, decisions)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.duty_cycle == pytest.approx(3 / 7)

    def test_shifted_decisions_lose_precision(self):
        truth = [IN, EX, EOE, EOE, IN, EX, EOE, EOE]
        decisions = [False] + [truth[i - 1] is EOE for i in range(1, 8)]
        report = simulate_phase_gating(truth, decisions)
        assert report.precision < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_phase_gating([IN], [True, False])
        with pytest.raises(ValueError):
            simulate_phase_gating([], [])

    def test_end_to_end_phase_gate(self, setup):
        """Predicted states drive the gate on a live stream."""
        db, predictor, _ = setup
        live = periodic_series(6)
        db.add_stream("PA", "LIVE6", series=live)
        latency = 0.3
        frame_times = np.arange(live.start_time + 8.0, live.end_time - 1.0, 0.1)
        decisions = []
        for t in frame_times:
            end = int(np.searchsorted(live.times, t, side="right"))
            query = live.subsequence(max(0, end - 7), end) if end >= 7 else None
            if query is None:
                decisions.append(False)
                continue
            horizon = (t + latency) - query.last_vertex.time
            result = predictor.predict_state(query, "PA/LIVE6", horizon)
            decisions.append(result is not None and result[0] is EOE)
        truth = states_at(live, frame_times + latency)
        report = simulate_phase_gating(truth, decisions)
        assert report.recall > 0.6
        assert report.precision > 0.6