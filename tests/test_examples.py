"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
