"""Property-based tests for the observability layer (hypothesis).

The merge algebra is the load-bearing property: per-tenant registry
snapshots roll up into the fleet view by plain folds, which is only
sound if the merge is associative and commutative with ``empty()`` as
identity.  Counters must be monotone, and telemetry must never perturb
retrieval (enabled and disabled matchers agree exactly on random
databases).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import SubsequenceMatcher
from repro.database.store import MotionDatabase
from repro.obs import Counter, MetricsRegistry, RegistrySnapshot, Telemetry

from test_properties import random_plr

BOUNDS = (1e-4, 1e-3, 1e-2, 0.1, 1.0)

amounts = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=30
)
observations = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=40
)


def _histogram_snapshot(values):
    reg = MetricsRegistry()
    h = reg.histogram("h", bounds=BOUNDS)
    for v in values:
        h.observe(v)
    return reg.snapshot().histograms["h"]


def _registry_snapshot(counters):
    reg = MetricsRegistry()
    for name, value in counters.items():
        reg.inc(name, value)
    return reg.snapshot()


def _assert_histograms_equal(a, b):
    assert a.counts == b.counts  # bucket counts are integers: exact
    assert a.count == b.count
    assert math.isclose(a.total, b.total, rel_tol=1e-12, abs_tol=1e-12)
    assert a.vmin == b.vmin and a.vmax == b.vmax


# -- counters ------------------------------------------------------------------


@given(increments=amounts)
def test_counter_is_monotone(increments):
    c = Counter("c")
    previous = 0.0
    for amount in increments:
        c.inc(amount)
        assert c.value >= previous
        previous = c.value
    assert math.isclose(
        c.value, sum(increments), rel_tol=1e-9, abs_tol=1e-9
    )


@given(
    increments=amounts,
    bad=st.floats(max_value=-1e-9, min_value=-1e6, allow_nan=False),
)
def test_negative_increment_rejected_and_harmless(increments, bad):
    c = Counter("c")
    for amount in increments:
        c.inc(amount)
    before = c.value
    try:
        c.inc(bad)
        raise AssertionError("negative increment must raise")
    except ValueError:
        pass
    assert c.value == before


# -- histogram algebra ---------------------------------------------------------


@given(values=observations)
def test_histogram_internal_consistency(values):
    snap = _histogram_snapshot(values)
    assert sum(snap.counts) == snap.count == len(values)
    assert math.isclose(
        snap.total, sum(values), rel_tol=1e-9, abs_tol=1e-9
    )
    if values:
        assert snap.vmin == min(values) and snap.vmax == max(values)
        # quantile() reports the holding bucket's upper bound, so it is
        # an upper estimate; only the +inf bucket is exact.
        assert snap.quantile(1.0) >= snap.vmax


@given(a=observations, b=observations)
def test_histogram_merge_commutative(a, b):
    sa, sb = _histogram_snapshot(a), _histogram_snapshot(b)
    _assert_histograms_equal(sa.merge(sb), sb.merge(sa))


@given(a=observations, b=observations, c=observations)
def test_histogram_merge_associative(a, b, c):
    sa, sb, sc = (
        _histogram_snapshot(a),
        _histogram_snapshot(b),
        _histogram_snapshot(c),
    )
    _assert_histograms_equal(sa.merge(sb).merge(sc), sa.merge(sb.merge(sc)))


@given(a=observations, b=observations)
def test_histogram_merge_equals_pooled_observation(a, b):
    merged = _histogram_snapshot(a).merge(_histogram_snapshot(b))
    pooled = _histogram_snapshot(list(a) + list(b))
    _assert_histograms_equal(merged, pooled)


# -- registry algebra ----------------------------------------------------------

counter_maps = st.dictionaries(
    st.sampled_from(["q", "r", "s", "t"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=4,
)


@given(a=counter_maps, b=counter_maps)
def test_registry_merge_sums_counters(a, b):
    merged = _registry_snapshot(a).merge(_registry_snapshot(b))
    for name in set(a) | set(b):
        assert math.isclose(
            merged.counter(name),
            a.get(name, 0.0) + b.get(name, 0.0),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


@given(a=counter_maps, b=counter_maps, c=counter_maps)
def test_registry_merge_associative_and_has_identity(a, b, c):
    sa, sb, sc = map(_registry_snapshot, (a, b, c))
    left = sa.merge(sb).merge(sc)
    right = sa.merge(sb.merge(sc))
    for name in set(a) | set(b) | set(c):
        assert math.isclose(
            left.counter(name), right.counter(name), rel_tol=1e-9, abs_tol=1e-9
        )
    with_identity = RegistrySnapshot.empty().merge(sa)
    assert dict(with_identity.counters) == dict(sa.counters)


# -- telemetry never perturbs retrieval ----------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_streams=st.integers(min_value=1, max_value=3),
    query_len=st.integers(min_value=3, max_value=6),
)
def test_enabled_matcher_identical_on_random_series(seed, n_streams, query_len):
    rng = np.random.default_rng(seed)
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_patient("PB")
    for k in range(n_streams):
        pid = "PA" if k % 2 == 0 else "PB"
        db.add_stream(
            pid, f"S{k:02d}", series=random_plr(rng, int(rng.integers(12, 30)))
        )
    sid = db.stream_ids[0]
    series = db.stream(sid).series
    if len(series) <= query_len:
        return
    start = int(rng.integers(0, len(series) - query_len))
    query = series.subsequence(start, start + query_len)

    telemetry = Telemetry()
    instrumented = SubsequenceMatcher(db, telemetry=telemetry)
    plain = SubsequenceMatcher(db)
    a = instrumented.find_matches(query, sid, threshold=math.inf)
    b = plain.find_matches(query, sid, threshold=math.inf)
    assert [(m.stream_id, m.start, m.distance) for m in a] == [
        (m.stream_id, m.start, m.distance) for m in b
    ]
    snap = telemetry.registry.snapshot()
    assert snap.counter("matcher.queries") == 1
    assert snap.counter("matcher.matches_returned") == len(a)
