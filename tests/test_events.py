"""Tests for the synchronous event bus."""

import copy
import gc

import pytest

from repro.events import Event, EventBus


class TestEvent:
    def test_getitem_and_get(self):
        event = Event("kind", {"a": 1})
        assert event["a"] == 1
        assert event.get("a") == 1
        assert event.get("b") is None
        assert event.get("b", 7) == 7

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Event("kind", {})["a"]


class TestEventBus:
    def test_publish_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.publish("quiet", x=1) is None

    def test_delivery_carries_payload(self):
        bus = EventBus()
        seen = []
        bus.subscribe("tick", seen.append)
        event = bus.publish("tick", n=3)
        assert event is not None and event["n"] == 3
        assert len(seen) == 1 and seen[0]["n"] == 3

    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("tick", lambda e: order.append("first"))
        bus.subscribe("tick", lambda e: order.append("second"))
        bus.publish("tick")
        assert order == ["first", "second"]

    def test_kinds_are_isolated(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", x=1)
        assert seen == []

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        callback = bus.subscribe("tick", seen.append)
        bus.unsubscribe("tick", callback)
        bus.publish("tick")
        assert seen == []
        assert not bus.has_subscribers("tick")

    def test_has_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers("tick")
        bus.subscribe("tick", lambda e: None)
        assert bus.has_subscribers("tick")

    def test_subscriber_exception_propagates(self):
        # Crash semantics: a raising subscriber (e.g. a chaos fault in a
        # vertex-log write) must surface through the publishing call.
        bus = EventBus()

        def boom(event):
            raise RuntimeError("torn write")

        bus.subscribe("commit", boom)
        with pytest.raises(RuntimeError):
            bus.publish("commit")

    def test_weak_subscription_dies_with_subscriber(self):
        bus = EventBus()

        class Listener:
            def __init__(self):
                self.seen = []

            def on_event(self, event):
                self.seen.append(event)

        listener = Listener()
        bus.subscribe("tick", listener.on_event, weak=True)
        bus.publish("tick")
        assert len(listener.seen) == 1
        del listener
        gc.collect()
        # The dead entry is pruned on the next publish.
        assert bus.publish("tick") is not None
        bus.publish("tick")

    def test_weak_unsubscribe(self):
        bus = EventBus()

        class Listener:
            def __init__(self):
                self.seen = []

            def on_event(self, event):
                self.seen.append(event)

        listener = Listener()
        bus.subscribe("tick", listener.on_event, weak=True)
        bus.unsubscribe("tick", listener.on_event)
        bus.publish("tick")
        assert listener.seen == []

    def test_deepcopy_yields_quiet_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe("tick", seen.append)
        clone = copy.deepcopy(bus)
        clone.publish("tick")
        assert seen == []
        assert not clone.has_subscribers("tick")
