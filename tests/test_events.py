"""Tests for the synchronous event bus."""

import copy
import gc

import pytest

from repro.events import Event, EventBus


class TestEvent:
    def test_getitem_and_get(self):
        event = Event("kind", {"a": 1})
        assert event["a"] == 1
        assert event.get("a") == 1
        assert event.get("b") is None
        assert event.get("b", 7) == 7

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Event("kind", {})["a"]


class TestEventBus:
    def test_publish_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.publish("quiet", x=1) is None

    def test_delivery_carries_payload(self):
        bus = EventBus()
        seen = []
        bus.subscribe("tick", seen.append)
        event = bus.publish("tick", n=3)
        assert event is not None and event["n"] == 3
        assert len(seen) == 1 and seen[0]["n"] == 3

    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("tick", lambda e: order.append("first"))
        bus.subscribe("tick", lambda e: order.append("second"))
        bus.publish("tick")
        assert order == ["first", "second"]

    def test_kinds_are_isolated(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", x=1)
        assert seen == []

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        callback = bus.subscribe("tick", seen.append)
        bus.unsubscribe("tick", callback)
        bus.publish("tick")
        assert seen == []
        assert not bus.has_subscribers("tick")

    def test_has_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers("tick")
        bus.subscribe("tick", lambda e: None)
        assert bus.has_subscribers("tick")

    def test_subscriber_exception_propagates(self):
        # Crash semantics: a raising subscriber (e.g. a chaos fault in a
        # vertex-log write) must surface through the publishing call.
        bus = EventBus()

        def boom(event):
            raise RuntimeError("torn write")

        bus.subscribe("commit", boom)
        with pytest.raises(RuntimeError):
            bus.publish("commit")

    def test_weak_subscription_dies_with_subscriber(self):
        bus = EventBus()

        class Listener:
            def __init__(self):
                self.seen = []

            def on_event(self, event):
                self.seen.append(event)

        listener = Listener()
        bus.subscribe("tick", listener.on_event, weak=True)
        bus.publish("tick")
        assert len(listener.seen) == 1
        del listener
        gc.collect()
        # The dead entry is pruned on the next publish.
        assert bus.publish("tick") is not None
        bus.publish("tick")

    def test_weak_unsubscribe(self):
        bus = EventBus()

        class Listener:
            def __init__(self):
                self.seen = []

            def on_event(self, event):
                self.seen.append(event)

        listener = Listener()
        bus.subscribe("tick", listener.on_event, weak=True)
        bus.unsubscribe("tick", listener.on_event)
        bus.publish("tick")
        assert listener.seen == []

    def test_deepcopy_yields_quiet_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe("tick", seen.append)
        clone = copy.deepcopy(bus)
        clone.publish("tick")
        assert seen == []
        assert not clone.has_subscribers("tick")


# -- envelope portability ------------------------------------------------------
#
# Every event kind the codebase publishes must survive the relay wire:
# encode_event -> JSON text -> decode_event, bit-exact.  The strategies
# below mirror each publisher's actual payload shape; a new published
# kind must be added to EVENT_PAYLOADS or the coverage test fails.

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import Match, SourceRelation
from repro.core.model import BreathingState, Vertex
from repro.events import decode_event, decode_value, encode_event, encode_value
from repro.obs import Telemetry
from repro.obs.telemetry import TelemetrySnapshot

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_ids = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122),
    min_size=1,
    max_size=12,
)
_positions = st.one_of(
    st.tuples(_finite),
    st.tuples(_finite, _finite, _finite),
)
_vertices = st.builds(
    Vertex,
    time=_finite,
    position=_positions,
    state=st.sampled_from(list(BreathingState)),
)
_arrays = st.lists(_finite, min_size=1, max_size=5).map(
    lambda xs: np.asarray(xs, dtype=float)
)
_counts = st.integers(min_value=0, max_value=500)


@st.composite
def _telemetry_snapshots(draw):
    """A real snapshot cut from a telemetry tree driven at random."""
    telemetry = Telemetry()
    registry = telemetry.registry
    for name in draw(
        st.lists(st.sampled_from(["a.b", "c.d", "e.f"]), max_size=3)
    ):
        registry.counter(name).inc(draw(st.integers(1, 9)))
    for value in draw(st.lists(_finite, max_size=3)):
        registry.histogram("h.v").observe(value)
    registry.gauge("g.v").set(draw(_finite))
    return telemetry.snapshot()


EVENT_PAYLOADS = {
    "patient_added": st.fixed_dictionaries({"patient_id": _ids}),
    "stream_added": st.fixed_dictionaries(
        {"stream_id": _ids, "patient_id": _ids}
    ),
    "stream_removed": st.fixed_dictionaries(
        {"stream_id": _ids, "patient_id": _ids}
    ),
    "session_opened": st.fixed_dictionaries(
        {"stream_id": _ids, "patient_id": _ids}
    ),
    "session_closed": st.fixed_dictionaries({"stream_id": _ids}),
    "query_refreshed": st.fixed_dictionaries(
        {"stream_id": _ids, "n_vertices": _counts, "n_matches": _counts}
    ),
    "prediction_served": st.fixed_dictionaries(
        {
            "stream_id": _ids,
            "time": _finite,
            "horizon": _finite,
            "position": _arrays,
            "n_matches": _counts,
        }
    ),
    "alarm": st.fixed_dictionaries(
        {
            "stream_id": _ids,
            "time": _finite,
            "active": st.booleans(),
            "value": _finite,
        }
    ),
    "vertex_committed": st.fixed_dictionaries(
        {
            "stream_id": _ids,
            "vertices": st.lists(_vertices, min_size=1, max_size=4).map(
                tuple
            ),
        }
    ),
    "vertex_amended": st.fixed_dictionaries(
        {"stream_id": _ids, "vertex": _vertices}
    ),
    "backend_compacted": st.fixed_dictionaries(
        {
            "snapshot_id": _counts,
            "n_streams": _counts,
            "n_index_lengths": _counts,
            "segments_rotated": _counts,
            "segments_deleted": _counts,
        }
    ),
    "telemetry_snapshot": st.fixed_dictionaries(
        {"snapshot": _telemetry_snapshots()}
    ),
}

#: Kinds any src/repro module publishes (keep in sync with the grep
#: ``events.publish(`` call sites; the strategies above mirror each
#: publisher's payload shape).
PUBLISHED_KINDS = frozenset(EVENT_PAYLOADS)


def _values_equal(a, b) -> bool:
    """Deep bit-exact equality across the payload type vocabulary."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, TelemetrySnapshot) or isinstance(b, TelemetrySnapshot):
        # Composite snapshots compare through their canonical encoding.
        return type(a) is type(b) and encode_value(a) == encode_value(b)
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_values_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and set(a) == set(b)
            and all(_values_equal(v, b[k]) for k, v in a.items())
        )
    # bool/int/IntEnum confusion is a real wire hazard: require the
    # exact type back, not just ``==``.
    return type(a) is type(b) and a == b


class TestEventEnvelopePortability:
    def test_catalogue_matches_published_kinds(self):
        # Every publish() call site in src/repro is listed here; a new
        # kind must come with a payload strategy.
        assert PUBLISHED_KINDS == {
            "patient_added",
            "stream_added",
            "stream_removed",
            "session_opened",
            "session_closed",
            "query_refreshed",
            "prediction_served",
            "alarm",
            "vertex_committed",
            "vertex_amended",
            "backend_compacted",
            "telemetry_snapshot",
        }

    @pytest.mark.parametrize("kind", sorted(EVENT_PAYLOADS))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_round_trip_is_bit_exact(self, kind, data):
        payload = data.draw(EVENT_PAYLOADS[kind])
        event = Event(kind, payload)
        envelope = encode_event(event)
        # The relay wire: envelope -> JSON text -> envelope.
        decoded = decode_event(json.loads(json.dumps(envelope)))
        assert decoded.kind == kind
        assert set(decoded.data) == set(event.data)
        for key, value in event.data.items():
            assert _values_equal(decoded.data[key], value), key

    @settings(max_examples=25, deadline=None)
    @given(
        matches=st.lists(
            st.builds(
                Match,
                stream_id=_ids,
                start=_counts,
                n_vertices=_counts,
                distance=_finite,
                relation=st.sampled_from(list(SourceRelation)),
            ),
            max_size=4,
        )
    )
    def test_match_lists_round_trip(self, matches):
        # Matches ride the scatter/gather wire, not the event bus, but
        # share the same value codec.
        wire = json.loads(json.dumps(encode_value(matches)))
        assert decode_value(wire) == matches

    def test_live_object_payloads_are_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())
