"""Analytics-tier tests: engine vs frozen oracle, snapshot scans, runner.

The acceptance property mirrors the matcher suite one tier up: across
randomized databases the signature-accelerated motif/anomaly engines
must return the *identical* result set as the frozen brute-force
references in :mod:`repro.testing.oracle` — same motifs, same match
sets, same order.  Databases go through ``make_test_database`` so the
sweep runs against both ``REPRO_TEST_BACKEND`` backends; the snapshot
tests pin the ``LoggedBackend`` explicitly (mmap'd columns are the
point), covering the exported-posting-buffer fast path, the lagging
buffer fallback, the merged sharded-root scan, and the batch runner
scanning concurrently with a ticking :class:`SessionManager`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    AnalyticsRunner,
    SnapshotHarvest,
    discover_motifs,
    fleet_anomalies,
    fleet_motifs,
    score_anomalies,
)
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.database.backend import LoggedBackend, open_snapshot_scan, shard_directory
from repro.database.index import StateSignatureIndex
from repro.database.store import MotionDatabase
from repro.obs import Telemetry
from repro.testing.oracle import reference_anomalies, reference_motifs

from conftest import make_series, make_test_database


def _series_from(times, positions, states):
    series = PLRSeries()
    for t, x, s in zip(times, positions, states):
        series.append(Vertex(float(t), (float(x),), BreathingState(s)))
    return series


# -- strategies ----------------------------------------------------------------

# Two-state alphabet: signature collisions (hence non-trivial posting
# groups) are common, which is what stresses the engine.
_states = st.integers(0, 1)
_gap = st.floats(0.2, 3.0, allow_nan=False, allow_infinity=False)
_position = st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False)


@st.composite
def _stream(draw, min_vertices=4, max_vertices=14):
    n = draw(st.integers(min_vertices, max_vertices))
    gaps = draw(st.lists(_gap, min_size=n, max_size=n))
    times = np.cumsum(gaps)
    positions = draw(st.lists(_position, min_size=n, max_size=n))
    states = draw(st.lists(_states, min_size=n, max_size=n))
    return times, positions, states


@st.composite
def _scenario(draw):
    streams = draw(st.lists(_stream(), min_size=1, max_size=3))
    length = draw(st.integers(2, 5))
    # Finite thresholds only: the engine never computes cross-signature
    # distances (inf by construction), so an infinite threshold would
    # compare inf <= inf in the oracle but not in the engine.
    threshold = draw(st.floats(0.5, 50.0, allow_nan=False))
    zone = draw(st.integers(1, 3))
    min_count = draw(st.integers(1, 3))
    max_motifs = draw(st.one_of(st.none(), st.integers(1, 4)))
    return streams, length, threshold, zone, min_count, max_motifs


def _build_db(streams):
    db = make_test_database()
    for i, (times, positions, states) in enumerate(streams):
        patient = f"P{i % 2}"
        if patient not in db.patient_ids:
            db.add_patient(patient)
        db.add_stream(
            patient, f"S{i}", series=_series_from(times, positions, states)
        )
    return db


# -- engine vs frozen oracle ---------------------------------------------------


class TestEngineVsOracle:
    @settings(max_examples=100, deadline=None)
    @given(scenario=_scenario())
    def test_motifs_identical_to_reference(self, scenario):
        """Index-accelerated discovery == frozen brute force, exactly."""
        streams, length, threshold, zone, min_count, max_motifs = scenario
        db = _build_db(streams)
        engine = fleet_motifs(
            db,
            length,
            threshold=threshold,
            exclusion_zone=zone,
            min_count=min_count,
            max_motifs=max_motifs,
        )
        oracle = reference_motifs(
            db,
            length,
            threshold=threshold,
            exclusion_zone=zone,
            min_count=min_count,
            max_motifs=max_motifs,
        )
        assert engine == oracle

    @settings(max_examples=100, deadline=None)
    @given(scenario=_scenario())
    def test_anomalies_identical_to_reference(self, scenario):
        streams, length, threshold, zone, _, _ = scenario
        db = _build_db(streams)
        report = fleet_anomalies(
            db, length, threshold=threshold, exclusion_zone=zone
        )
        oracle = reference_anomalies(
            db, length, threshold=threshold, exclusion_zone=zone
        )
        assert list(report.anomalies) == oracle
        # The per-stream tallies partition the window universe.
        assert report.n_windows == sum(
            max(0, len(r.series) - length + 1) for r in db.iter_streams()
        )
        assert report.n_anomalies == len(oracle)

    def test_rejects_degenerate_length(self):
        db = _build_db([(np.arange(1.0, 6.0), [0.0] * 5, [0, 1, 0, 1, 0])])
        with pytest.raises(ValueError):
            fleet_motifs(db, 1)


# -- anomaly edge cases --------------------------------------------------------


class TestAnomalyEdgeCases:
    def test_stream_shorter_than_window_has_zero_windows(self):
        db = make_test_database()
        db.add_patient("P0")
        db.add_stream(
            "P0", "SHORT",
            series=_series_from([1.0, 2.0, 3.0], [0.0, 5.0, 0.0], [0, 1, 0]),
        )
        db.add_stream("P0", "LONG", series=make_series(cycles=4))
        report = fleet_anomalies(db, 5)
        short = next(s for s in report.streams if "SHORT" in s.stream_id)
        assert short.n_windows == 0
        assert short.n_anomalies == 0
        assert short.score == 0.0
        assert all(sid.endswith("LONG") for sid, _ in report.anomalies)
        assert list(report.anomalies) == reference_anomalies(db, 5)

    def test_all_constant_streams_score_zero(self):
        # Identical regular series: every window matches its twin in the
        # other stream (distance 0), so nothing is anomalous.
        db = make_test_database()
        db.add_patient("P0")
        db.add_stream("P0", "A", series=make_series(cycles=5))
        db.add_stream("P0", "B", series=make_series(cycles=5))
        report = fleet_anomalies(db, 4)
        assert report.n_windows > 0
        assert report.n_anomalies == 0
        assert report.fleet_score == 0.0
        assert all(s.score == 0.0 for s in report.streams)
        assert reference_anomalies(db, 4) == []

    def test_tombstoned_streams_are_skipped(self):
        db = make_test_database()
        db.add_patient("P0")
        db.add_stream("P0", "KEEP0", series=make_series(cycles=5))
        dead = db.add_stream("P0", "DEAD", series=make_series(cycles=5))
        db.add_stream("P0", "KEEP1", series=make_series(cycles=5, start=1.0))
        db.remove_stream(dead.stream_id)
        motifs = fleet_motifs(db, 4)
        report = fleet_anomalies(db, 4)
        seen = {s.stream_id for s in report.streams}
        assert dead.stream_id not in seen
        assert len(seen) == 2
        for motif in motifs:
            assert motif.stream_id != dead.stream_id
            assert all(sid != dead.stream_id for sid, _ in motif.matches)
        assert motifs == reference_motifs(db, 4)
        assert list(report.anomalies) == reference_anomalies(db, 4)


# -- snapshot scans ------------------------------------------------------------


LENGTH = 4


def _logged_db(directory, n_streams=3, cycles=6):
    db = MotionDatabase(backend=LoggedBackend(directory))
    db.add_patient("PA")
    for k in range(n_streams):
        db.add_stream(
            "PA", f"S{k}", series=make_series(cycles=cycles, start=0.1 * k)
        )
    return db


class TestSnapshotHarvest:
    def test_buffer_fast_path_equals_oracle(self, tmp_path):
        db = _logged_db(tmp_path)
        index = StateSignatureIndex(db)
        # Touching the length instantiates + catches up its posting
        # buffers, so the snapshot exports them complete.
        list(index.posting_groups(LENGTH))
        db.compact(index=index)
        harvest = SnapshotHarvest(open_snapshot_scan(tmp_path))
        assert harvest._buffers_cover(harvest.scans[0], LENGTH) is not None
        assert discover_motifs(harvest, LENGTH) == reference_motifs(db, LENGTH)
        report = score_anomalies(harvest, LENGTH)
        assert list(report.anomalies) == reference_anomalies(db, LENGTH)
        db.close()

    def test_lagging_buffers_fall_back_to_columns(self, tmp_path):
        db = _logged_db(tmp_path)
        index = StateSignatureIndex(db)
        list(index.posting_groups(LENGTH))
        db.compact(index=index)
        # New vertices after the catch-up: the next snapshot's buffers
        # lag its vertex columns, so the harvest must recompute.
        record = db.stream("PA/S0")
        tail = make_series(cycles=2, start=record.series.times[-1] + 1.0)
        fresh = list(tail)
        for vertex in fresh:
            record.series.append(vertex)
        db.commit_vertices("PA/S0", fresh)
        db.compact(index=index)
        harvest = SnapshotHarvest(open_snapshot_scan(tmp_path))
        assert harvest._buffers_cover(harvest.scans[0], LENGTH) is None
        assert discover_motifs(harvest, LENGTH) == reference_motifs(db, LENGTH)
        report = score_anomalies(harvest, LENGTH)
        assert list(report.anomalies) == reference_anomalies(db, LENGTH)
        db.close()

    def test_sharded_root_merges_the_whole_fleet(self, tmp_path):
        # Two per-shard directories; the harvest must mine motifs across
        # shards, not one shard at a time.
        mirror = MotionDatabase()
        for shard in range(2):
            directory = shard_directory(tmp_path, shard)
            db = MotionDatabase(backend=LoggedBackend(directory))
            pid = f"P{shard}"
            db.add_patient(pid)
            mirror.add_patient(pid)
            for k in range(2):
                series = make_series(cycles=5, start=0.05 * (2 * shard + k))
                db.add_stream(pid, f"S{k}", series=series)
                mirror.add_stream(pid, f"S{k}", series=series)
            db.compact()
            db.close()
        runner = AnalyticsRunner(tmp_path, LENGTH)
        report = runner.run_once()
        assert len(report.snapshot_ids) == 2
        assert list(report.motifs) == reference_motifs(mirror, LENGTH)
        assert list(report.anomalies.anomalies) == reference_anomalies(
            mirror, LENGTH
        )
        # Cross-shard evidence: some motif's match set spans patients.
        spans = {
            key[0].split("/")[0]
            for motif in report.motifs
            for key in (motif.key, *motif.matches)
        }
        assert len(spans) == 2

    def test_duplicate_stream_ids_across_scans_rejected(self, tmp_path):
        for name in ("a", "b"):
            db = _logged_db(tmp_path / name, n_streams=1)
            db.compact()
            db.close()
        with pytest.raises(ValueError, match="more than one scan"):
            SnapshotHarvest(
                [open_snapshot_scan(tmp_path / "a"),
                 open_snapshot_scan(tmp_path / "b")]
            )


# -- the batch runner ----------------------------------------------------------


class TestAnalyticsRunner:
    def test_rejects_unrecognised_directory(self, tmp_path):
        runner = AnalyticsRunner(tmp_path, LENGTH)
        with pytest.raises(ValueError, match="neither a logged database"):
            runner.run_once()

    def test_run_once_publishes_report_and_telemetry(self, tmp_path):
        db = _logged_db(tmp_path)
        db.compact()
        db.close()
        telemetry = Telemetry()
        runner = AnalyticsRunner(tmp_path, LENGTH, telemetry=telemetry)
        assert runner.latest is None
        report = runner.run_once()
        assert runner.latest is report
        assert report.n_streams == 3
        assert report.n_windows > 0
        merged = telemetry.snapshot().merged
        assert merged.counter("analytics.runs") == 1
        assert merged.counter("analytics.windows_scanned") == report.n_windows
        assert merged.counter("analytics.matched_windows") > 0

    def test_scheduled_runs_skip_until_first_snapshot(self, tmp_path):
        # A live directory that has never compacted: scheduled runs are
        # counted as skipped (not errors) until the writer commits.
        db = MotionDatabase(backend=LoggedBackend(tmp_path))
        db.add_patient("PA")
        db.add_stream("PA", "S0", series=make_series(cycles=4))
        telemetry = Telemetry()
        runner = AnalyticsRunner(
            tmp_path, LENGTH, interval=0.005, telemetry=telemetry
        )
        runner.start()
        with pytest.raises(RuntimeError):
            runner.start()
        try:
            deadline = 200
            while (
                telemetry.snapshot().merged.counter("analytics.skipped_runs")
                < 1 and deadline > 0
            ):
                import time

                time.sleep(0.005)
                deadline -= 1
        finally:
            runner.stop()
        assert (
            telemetry.snapshot().merged.counter("analytics.skipped_runs") >= 1
        )
        assert runner.latest is None
        assert runner.last_error is None
        db.compact()
        assert runner.run_once().n_streams == 1
        db.close()

    def test_scan_runs_concurrently_with_live_ingest(self, tmp_path):
        """The read-concurrency stress: batch scans against a ticking
        SessionManager writing (and compacting) the same directory."""
        from repro.service.manager import SessionManager
        from repro.signals.patients import generate_population
        from repro.signals.respiratory import RespiratorySimulator, SessionConfig

        db = _logged_db(tmp_path, n_streams=2)
        manager = SessionManager(db)
        manager.compact()

        runner = AnalyticsRunner(tmp_path, LENGTH, interval=0.001)
        runner.start()
        try:
            profile = generate_population(1, seed=7)[0]
            raw = RespiratorySimulator(
                profile, SessionConfig(duration=12.0)
            ).generate_session(0, seed=11)
            session = manager.open_session("PA", "LIVE")
            for i, t in enumerate(raw.times):
                manager.tick(float(t), {session.stream_id: raw.values[i]})
                if i % 60 == 59:
                    manager.compact()
        finally:
            runner.stop()
        assert runner.last_error is None
        assert runner.latest is not None

        # Quiesced: one final compact + synchronous run == the oracle
        # over the live database, live session stream included.
        manager.compact()
        report = runner.run_once()
        assert list(report.motifs) == reference_motifs(db, LENGTH)
        assert list(report.anomalies.anomalies) == reference_anomalies(
            db, LENGTH
        )
        manager.close(keep_streams=True)
        db.close()
