"""Tests for the gated-treatment and beam-tracking simulators."""

import numpy as np
import pytest

from repro.gating import (
    GatingWindow,
    delayed_positions,
    simulate_gating,
    simulate_tracking,
)


@pytest.fixture
def breathing():
    t = np.arange(0, 60, 1 / 30)
    x = 7.5 * (1 - np.cos(2 * np.pi * t / 4.0))  # 0..15 mm
    return t, x


class TestGatingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            GatingWindow(2.0, 2.0)

    def test_contains(self):
        window = GatingWindow(0.0, 5.0)
        mask = window.contains(np.array([-1.0, 0.0, 3.0, 5.0, 6.0]))
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_around_exhale(self, breathing):
        _, x = breathing
        window = GatingWindow.around_exhale(x, width_fraction=0.3)
        assert window.low < x.min() + 1e-6
        assert window.high == pytest.approx(x.min() + 0.3 * 15.0, abs=0.1)


class TestDelayedPositions:
    def test_shifts_by_latency(self, breathing):
        t, x = breathing
        delayed = delayed_positions(t, x, latency=0.2)
        # 0.2 s at 30 Hz = 6 samples (7 where floating point rounds down).
        ok = (delayed[10:] == x[4:-6]) | (delayed[10:] == x[3:-7])
        assert ok.all()

    def test_clamps_at_start(self, breathing):
        t, x = breathing
        delayed = delayed_positions(t, x, latency=5.0)
        assert delayed[0] == x[0]


class TestSimulateGating:
    def test_perfect_controller(self, breathing):
        _, x = breathing
        window = GatingWindow.around_exhale(x)
        res = simulate_gating(x, x, window)
        assert res.precision == 1.0
        assert res.recall == 1.0
        assert 0.0 < res.duty_cycle < 1.0
        assert res.mistreatment == 0.0

    def test_latency_degrades_quality(self, breathing):
        t, x = breathing
        window = GatingWindow.around_exhale(x)
        delayed = delayed_positions(t, x, latency=0.4)
        res = simulate_gating(x, delayed, window)
        assert res.precision < 1.0
        assert res.recall < 1.0

    def test_worse_with_longer_latency(self, breathing):
        t, x = breathing
        window = GatingWindow.around_exhale(x)
        res_short = simulate_gating(x, delayed_positions(t, x, 0.1), window)
        res_long = simulate_gating(x, delayed_positions(t, x, 0.8), window)
        assert res_long.precision <= res_short.precision

    def test_misaligned_arrays_rejected(self, breathing):
        _, x = breathing
        with pytest.raises(ValueError):
            simulate_gating(x, x[:-1], GatingWindow(0.0, 5.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate_gating(np.array([]), np.array([]), GatingWindow(0, 1))


class TestSimulateTracking:
    def test_perfect_aim(self, breathing):
        _, x = breathing
        res = simulate_tracking(x, x)
        assert res.mean_error == 0.0
        assert res.max_error == 0.0

    def test_constant_offset(self, breathing):
        _, x = breathing
        res = simulate_tracking(x, x + 2.0)
        assert res.mean_error == pytest.approx(2.0)
        assert res.p95_error == pytest.approx(2.0)

    def test_multidimensional(self):
        true = np.zeros((10, 3))
        aim = np.zeros((10, 3))
        aim[:, 0] = 3.0
        aim[:, 1] = 4.0
        res = simulate_tracking(true, aim)
        assert res.mean_error == pytest.approx(5.0)

    def test_latency_error_scales_with_velocity(self, breathing):
        t, x = breathing
        slow = simulate_tracking(x, delayed_positions(t, x, 0.1))
        fast = simulate_tracking(x, delayed_positions(t, x, 0.5))
        assert slow.mean_error < fast.mean_error
