"""Tests for the DFT-feature subsequence matcher baseline."""

import numpy as np
import pytest

from repro.baselines.spectral import SpectralConfig, SpectralMatcher

from tests_support import clean_cycles


@pytest.fixture
def matcher():
    m = SpectralMatcher(SpectralConfig(window_seconds=8.0, stride_seconds=1.0))
    t, x = clean_cycles(n_cycles=10, period=4.0)
    m.add_stream("A", t, x)
    t2, x2 = clean_cycles(n_cycles=10, period=5.0, amplitude=6.0)
    m.add_stream("B", t2, x2)
    return m


class TestIndexing:
    def test_window_count(self):
        m = SpectralMatcher(
            SpectralConfig(window_seconds=8.0, stride_seconds=2.0)
        )
        t, x = clean_cycles(n_cycles=8, period=4.0)  # ~31.97 s of samples
        added = m.add_stream("A", t, x)
        # Windows start at 0, 2, ..., 22 (24 + 8 exceeds the last sample).
        assert added == 12
        assert m.n_windows == 12

    def test_misaligned_rejected(self):
        m = SpectralMatcher()
        with pytest.raises(ValueError):
            m.add_stream("A", np.arange(10.0), np.arange(9.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpectralConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            SpectralConfig(n_points=2)
        with pytest.raises(ValueError):
            SpectralConfig(n_coefficients=0)


class TestQuery:
    def test_same_period_stream_preferred(self, matcher):
        t, x = clean_cycles(n_cycles=6, period=4.0)
        hits = matcher.query(t, x, k=5)
        assert len(hits) == 5
        # The 4 s-period stream A dominates the neighbours of a 4 s query.
        assert sum(w.stream_id == "A" for w, _ in hits) >= 4

    def test_distances_sorted(self, matcher):
        t, x = clean_cycles(n_cycles=6, period=4.0)
        hits = matcher.query(t, x, k=8)
        distances = [d for _, d in hits]
        assert distances == sorted(distances)

    def test_exclusion(self, matcher):
        t, x = clean_cycles(n_cycles=6, period=4.0)
        hits = matcher.query(t, x, k=10, exclude_stream="A")
        assert all(w.stream_id != "A" for w, _ in hits)

    def test_exclude_after(self, matcher):
        t, x = clean_cycles(n_cycles=6, period=4.0)
        hits = matcher.query(
            t, x, k=10, exclude_stream="A", exclude_after=16.0
        )
        for window, _ in hits:
            if window.stream_id == "A":
                assert window.end_time <= 16.0

    def test_short_query_rejected(self, matcher):
        t, x = clean_cycles(n_cycles=1, period=4.0)
        with pytest.raises(ValueError):
            matcher.query(t, x)

    def test_empty_index(self):
        m = SpectralMatcher()
        t, x = clean_cycles(n_cycles=6)
        assert m.query(t, x) == []


class TestLowerBound:
    def test_feature_distance_lower_bounds_euclidean(self):
        """Parseval: truncated-DFT distance <= true Euclidean distance."""
        config = SpectralConfig(window_seconds=8.0, stride_seconds=2.0)
        m = SpectralMatcher(config)
        t, x = clean_cycles(n_cycles=10, period=4.0)
        rng = np.random.default_rng(0)
        x_noisy = x + rng.normal(0, 0.5, len(x))
        m.add_stream("A", t, x_noisy)
        tq, xq = clean_cycles(n_cycles=4, period=3.5)
        hits = m.query(tq, xq, k=10)
        for window, feature_distance in hits:
            true = m.true_distance(tq, xq, window, t, x_noisy)
            assert feature_distance <= true + 1e-9
