"""Tests for the analysis layer: metrics, reporting, correlation."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    categorical_association,
    contingency_table,
    cramers_v,
    discover_correlations,
    numeric_association,
)
from repro.analysis.metrics import (
    mean_absolute_error,
    rmse,
    summarize_errors,
)
from repro.analysis.reporting import (
    banner,
    format_series,
    format_table,
    sparkline,
)
from repro.signals.patients import generate_population


class TestMetrics:
    def test_summary(self):
        s = summarize_errors([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.p95 == pytest.approx(3.85)

    def test_empty_summary(self):
        s = summarize_errors([])
        assert s.n == 0
        assert np.isnan(s.mean)

    def test_mae_and_rmse(self):
        predicted = [1.0, 2.0, 3.0]
        actual = [1.0, 4.0, 3.0]
        assert mean_absolute_error(predicted, actual) == pytest.approx(2 / 3)
        assert rmse(predicted, actual) == pytest.approx(np.sqrt(4 / 3))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text and "0.125" in text

    def test_format_table_title_and_bools(self):
        text = format_table(["x"], [[True], [False]], title="T")
        assert text.startswith("T\n")
        assert "yes" in text and "no" in text

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.5, 0.25])
        assert "curve" in text and "0.250" in text

    def test_series_misaligned(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_banner(self):
        assert "hello" in banner("hello")

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_sparkline_constant(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_sparkline_nan_gap(self):
        line = sparkline([0.0, float("nan"), 7.0])
        assert line[1] == " " and line[0] == "▁" and line[2] == "█"

    def test_sparkline_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestCorrelation:
    def test_contingency_table(self):
        table, clusters, cats = contingency_table(
            np.array([0, 0, 1, 1]), ["a", "b", "a", "a"]
        )
        assert clusters == [0, 1] and cats == ["a", "b"]
        np.testing.assert_array_equal(table, [[1, 1], [2, 0]])

    def test_cramers_v_extremes(self):
        perfect = np.array([[5, 0], [0, 5]])
        none = np.array([[5, 5], [5, 5]])
        assert cramers_v(perfect) == pytest.approx(1.0)
        assert cramers_v(none) == pytest.approx(0.0)

    def test_categorical_detects_planted(self):
        labels = np.array([0] * 10 + [1] * 10)
        values = ["x"] * 10 + ["y"] * 10
        assoc = categorical_association(labels, values, "attr")
        assert assoc.significant
        assert assoc.effect_size == pytest.approx(1.0)

    def test_categorical_degenerate(self):
        labels = np.zeros(4, dtype=int)
        assoc = categorical_association(labels, ["x"] * 4, "attr")
        assert assoc.p_value == 1.0

    def test_numeric_detects_planted(self):
        labels = np.array([0] * 8 + [1] * 8)
        values = list(np.r_[np.random.default_rng(0).normal(0, 1, 8),
                            np.random.default_rng(1).normal(10, 1, 8)])
        assoc = numeric_association(labels, values, "age")
        assert assoc.significant
        assert assoc.effect_size > 0.8

    def test_numeric_degenerate(self):
        assoc = numeric_association(np.array([0, 1]), [1.0, 2.0], "age")
        assert assoc.p_value == 1.0

    def test_discover_correlations_sorted(self):
        profiles = generate_population(9, seed=0)
        # Cluster by tumor site -> tumor_site must rank first.
        site_order = {"lung_upper": 0, "lung_lower": 1, "abdomen": 2}
        labels = np.array(
            [site_order[p.attributes.tumor_site] for p in profiles]
        )
        associations = discover_correlations(profiles, labels)
        assert associations[0].attribute == "tumor_site"
        ps = [a.p_value for a in associations]
        assert ps == sorted(ps)

    def test_discover_misaligned(self):
        profiles = generate_population(3, seed=0)
        with pytest.raises(ValueError):
            discover_correlations(profiles, np.array([0]))
