"""Tests for the related-work representations (PAA, APCA, DFT, DWT, SVD, PLR)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    apca,
    apca_reconstruct,
    bottom_up_plr,
    dft_reconstruct,
    dft_reduce,
    dwt_reconstruct,
    dwt_reduce,
    haar_inverse,
    haar_transform,
    paa,
    paa_reconstruct,
    plr_reconstruct,
    reconstruction_error,
    svd_fit,
    svd_reconstruct,
    svd_reduce,
)


@pytest.fixture
def signal():
    t = np.linspace(0, 6 * np.pi, 256)
    return np.sin(t) + 0.3 * np.sin(3 * t)


class TestPAA:
    def test_full_resolution_exact(self, signal):
        coeffs = paa(signal, len(signal))
        np.testing.assert_allclose(paa_reconstruct(coeffs, len(signal)), signal)

    def test_error_decreases_with_k(self, signal):
        errors = [
            reconstruction_error(
                signal, paa_reconstruct(paa(signal, k), len(signal))
            )
            for k in (4, 16, 64)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_mean_preserved(self, signal):
        coeffs = paa(signal, 8)
        assert np.average(
            coeffs, weights=np.diff(np.linspace(0, len(signal), 9).round())
        ) == pytest.approx(signal.mean())

    def test_invalid_k(self, signal):
        with pytest.raises(ValueError):
            paa(signal, 0)
        with pytest.raises(ValueError):
            paa(signal, len(signal) + 1)


class TestAPCA:
    def test_segments_cover(self, signal):
        segments = apca(signal, 10)
        assert segments[0].start == 0
        assert segments[-1].end == len(signal)
        for a, b in zip(segments, segments[1:]):
            assert a.end == b.start

    def test_adapts_better_than_paa_on_bursty_signal(self):
        x = np.zeros(128)
        x[90:110] = np.sin(np.linspace(0, 3 * np.pi, 20)) * 5
        k = 8
        e_apca = reconstruction_error(x, apca_reconstruct(apca(x, k), len(x)))
        e_paa = reconstruction_error(x, paa_reconstruct(paa(x, k), len(x)))
        assert e_apca <= e_paa

    def test_reconstruct_requires_cover(self, signal):
        segments = apca(signal, 5)
        with pytest.raises(ValueError):
            apca_reconstruct(segments, len(signal) + 10)


class TestDFT:
    def test_full_reconstruction(self, signal):
        coeffs = dft_reduce(signal, len(signal) // 2 + 1)
        np.testing.assert_allclose(
            dft_reconstruct(coeffs, len(signal)), signal, atol=1e-9
        )

    def test_low_frequency_signal_compresses_well(self, signal):
        # The fixture has content at bins ~3 and ~9; 16 coefficients
        # capture both (up to leakage from the non-integer window).
        coeffs = dft_reduce(signal, 16)
        approx = dft_reconstruct(coeffs, len(signal))
        assert reconstruction_error(signal, approx) < 0.1

    def test_invalid_k(self, signal):
        with pytest.raises(ValueError):
            dft_reduce(signal, 0)


class TestDWT:
    def test_roundtrip_power_of_two(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=64)
        np.testing.assert_allclose(haar_inverse(haar_transform(x)), x,
                                   atol=1e-9)

    def test_roundtrip_arbitrary_length(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=50)
        values, indices = dwt_reduce(x, 64)
        np.testing.assert_allclose(dwt_reconstruct(values, indices, 50), x,
                                   atol=1e-9)

    def test_energy_preserved(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=32)
        coeffs = haar_transform(x)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(x**2))

    def test_error_decreases_with_k(self, signal):
        errors = []
        for k in (8, 32, 128):
            values, indices = dwt_reduce(signal, k)
            errors.append(
                reconstruction_error(
                    signal, dwt_reconstruct(values, indices, len(signal))
                )
            )
        assert errors[0] >= errors[1] >= errors[2]


class TestSVD:
    def test_projection_roundtrip_full_rank(self):
        rng = np.random.default_rng(0)
        windows = rng.normal(size=(20, 6))
        basis = svd_fit(windows, 6)
        coeffs = svd_reduce(basis, windows)
        np.testing.assert_allclose(
            svd_reconstruct(basis, coeffs), windows, atol=1e-9
        )

    def test_low_rank_structure_captured(self):
        rng = np.random.default_rng(1)
        factors = rng.normal(size=(40, 2))
        directions = rng.normal(size=(2, 16))
        windows = factors @ directions
        basis = svd_fit(windows, 2)
        approx = svd_reconstruct(basis, svd_reduce(basis, windows))
        assert reconstruction_error(windows.ravel(), approx.ravel()) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            svd_fit(np.zeros(5), 1)
        with pytest.raises(ValueError):
            svd_fit(np.zeros((4, 4)), 5)


class TestBottomUpPLR:
    def test_breakpoints_valid(self, signal):
        t = np.arange(len(signal), dtype=float)
        bounds = bottom_up_plr(t, signal, 12)
        assert bounds[0] == 0 and bounds[-1] == len(signal) - 1
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert len(bounds) - 1 == 12

    def test_error_decreases_with_segments(self, signal):
        t = np.arange(len(signal), dtype=float)
        errors = []
        for k in (4, 12, 40):
            bounds = bottom_up_plr(t, signal, k)
            errors.append(
                reconstruction_error(signal, plr_reconstruct(t, signal, bounds))
            )
        assert errors[0] > errors[1] > errors[2]

    def test_piecewise_linear_signal_exact(self):
        t = np.arange(40, dtype=float)
        x = np.concatenate([np.linspace(0, 10, 20), np.linspace(10, 0, 20)])
        bounds = bottom_up_plr(t, x, 3)
        approx = plr_reconstruct(t, x, bounds)
        assert reconstruction_error(x, approx) < 0.2

    def test_validation(self):
        t = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            bottom_up_plr(t, t[:5], 2)
        with pytest.raises(ValueError):
            bottom_up_plr(t, t, 0)
        with pytest.raises(ValueError):
            reconstruction_error(np.zeros(3), np.zeros(4))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=100),
    k=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_paa_reconstruction_bounded(n, k, seed):
    """PAA reconstruction error never exceeds the signal's own spread."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    k = min(k, n)
    approx = paa_reconstruct(paa(x, k), n)
    assert reconstruction_error(x, approx) <= x.std() + 1e-9
