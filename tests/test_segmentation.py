"""Tests for the online PLR segmenter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import BreathingState
from repro.core.segmentation import (
    OnlineSegmenter,
    SegmenterConfig,
    segment_signal,
)

from conftest import EOE, EX, IN, IRR, assert_monotone_times
from tests_support import clean_cycles


class TestCleanSignal:
    def test_states_cycle_regularly(self):
        t, x = clean_cycles()
        series = segment_signal(t, x)
        states = [BreathingState(s) for s in series.states[:-1]]
        # After warm-up the regular loop IN -> EX -> EOE must repeat.
        tail = states[3:]
        assert IRR not in tail
        for a, b in zip(tail, tail[1:]):
            assert (a, b) in {(IN, EX), (EX, EOE), (EOE, IN)}, (a, b)

    def test_roughly_three_segments_per_cycle(self):
        t, x = clean_cycles(n_cycles=10)
        series = segment_signal(t, x)
        assert 3 * 10 - 4 <= series.n_segments <= 3 * 10 + 4

    def test_amplitudes_recovered(self):
        # Causal EMA smoothing attenuates peaks, so the detected amplitude
        # sits somewhat below truth; it must stay within 30%.
        t, x = clean_cycles(amplitude=12.0)
        series = segment_signal(t, x)
        in_amps = series.amplitudes[series.states[:-1] == int(IN)]
        assert 0.7 * 12.0 <= np.median(in_amps) <= 1.1 * 12.0

    def test_durations_recovered(self):
        t, x = clean_cycles(period=4.0)
        series = segment_signal(t, x)
        eoe_durs = series.durations[series.states[:-1] == int(EOE)]
        assert abs(np.median(eoe_durs) - 1.2) < 0.5

    def test_monotone_vertex_times(self):
        t, x = clean_cycles()
        assert_monotone_times(segment_signal(t, x))

    def test_plr_tracks_signal(self):
        # The PLR lags the raw signal by roughly the EMA time constant,
        # bounding the mean reconstruction error at a few mm on steep slopes.
        t, x = clean_cycles()
        series = segment_signal(t, x)
        probe = t[(t > series.start_time) & (t < series.end_time)][::7]
        recon = np.array([series.position_at(ti)[0] for ti in probe])
        truth = np.interp(probe, t, x)
        assert np.mean(np.abs(recon - truth)) < 3.0


class TestStreamingBehaviour:
    def test_incremental_equals_batch(self):
        t, x = clean_cycles(n_cycles=5)
        batch = segment_signal(t, x)
        seg = OnlineSegmenter()
        for ti, xi in zip(t, x):
            seg.add_point(float(ti), float(xi))
        seg.finish()
        np.testing.assert_allclose(seg.series.times, batch.times)
        np.testing.assert_array_equal(seg.series.states, batch.states)

    def test_rejects_non_increasing_time(self):
        seg = OnlineSegmenter()
        seg.add_point(0.0, 1.0)
        with pytest.raises(ValueError):
            seg.add_point(0.0, 2.0)

    def test_finish_idempotent_on_empty(self):
        assert OnlineSegmenter().finish() == []

    def test_finish_closes_open_segment(self):
        t, x = clean_cycles(n_cycles=3)
        seg = OnlineSegmenter()
        seg.extend(t, x)
        n_before = len(seg.series)
        closed = seg.finish()
        assert len(closed) == 1
        assert len(seg.series) == n_before + 1
        assert seg.series.end_time == pytest.approx(t[-1])

    def test_multidimensional_input(self):
        t, x = clean_cycles(n_cycles=4)
        values = np.stack([x, 0.3 * x], axis=1)
        series = segment_signal(t, values)
        assert series.ndim == 2
        assert series.n_segments > 6


class TestNoiseRobustness:
    def test_despiking_swallows_outliers(self):
        t, x = clean_cycles(n_cycles=5)
        x_spiky = x.copy()
        x_spiky[40] += 40.0
        x_spiky[200] -= 35.0
        clean = segment_signal(t, x)
        spiky = segment_signal(t, x_spiky)
        assert abs(spiky.n_segments - clean.n_segments) <= 2

    def test_cardiac_noise_filtered(self):
        t, x = clean_cycles(n_cycles=8)
        noisy = x + 0.5 * np.sin(2 * np.pi * 1.2 * t)
        series = segment_signal(t, noisy)
        # Cardiac oscillation must not triple the segment count.
        assert series.n_segments <= 8 * 3 + 6

    def test_breath_hold_marked_irregular(self):
        t, x = clean_cycles(n_cycles=10, period=3.0)
        hold = (t > 12.0) & (t < 18.0)
        x = x.copy()
        x[hold] = 0.0
        series = segment_signal(t, x)
        idx = [
            i
            for i in range(series.n_segments)
            if series.times[i] >= 11.0 and series.times[i] <= 20.0
        ]
        assert any(series.states[i] == int(IRR) for i in idx)


class TestOnSimulator:
    def test_states_match_ground_truth(self, raw_stream):
        series = segment_signal(raw_stream.times, raw_stream.values)
        checked = agreed = 0
        for i in range(series.n_segments):
            mid = 0.5 * (series.times[i] + series.times[i + 1])
            truth = raw_stream.truth_state_at(mid)
            got = BreathingState(series.states[i])
            if truth is None or truth is IRR or got is IRR:
                continue
            checked += 1
            agreed += truth is got
        assert checked > 20
        # Detected boundaries lag truth by the smoothing delay, so perfect
        # agreement is impossible; two thirds at segment midpoints is the
        # reliable floor.
        assert agreed / checked > 0.65

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SegmenterConfig(smoothing_seconds=0.0)
        with pytest.raises(ValueError):
            SegmenterConfig(flat_velocity_fraction=1.5)
        with pytest.raises(ValueError):
            SegmenterConfig(min_state_duration=-1.0)


@settings(max_examples=20, deadline=None)
@given(
    period=st.floats(min_value=2.5, max_value=6.0),
    amplitude=st.floats(min_value=3.0, max_value=20.0),
)
def test_property_segmentation_bounded_and_ordered(period, amplitude):
    """For any clean periodic signal: monotone times, bounded segment count,
    no IRR after warm-up."""
    t, x = clean_cycles(n_cycles=6, period=period, amplitude=amplitude)
    series = segment_signal(t, x)
    assert_monotone_times(series)
    assert series.n_segments <= 6 * 3 + 5
    tail = series.states[3:-1]
    assert int(IRR) not in tail
