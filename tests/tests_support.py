"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np


def clean_cycles(n_cycles=8, period=4.0, amplitude=10.0, rate=30.0):
    """Noise-free raised-cosine breathing (IN 30%, EX 40%, EOE 30%)."""
    t = np.arange(int(n_cycles * period * rate)) / rate
    phase = (t % period) / period
    x = np.zeros_like(t)
    rise = phase < 0.3
    x[rise] = amplitude * 0.5 * (1 - np.cos(np.pi * phase[rise] / 0.3))
    fall = (phase >= 0.3) & (phase < 0.7)
    x[fall] = amplitude * 0.5 * (1 + np.cos(np.pi * (phase[fall] - 0.3) / 0.4))
    return t, x
