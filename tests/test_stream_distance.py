"""Tests for Definition 3 (whole-stream distance)."""

import math

import numpy as np
import pytest

from repro.core.model import PLRSeries, Vertex
from repro.core.similarity import SourceRelation
from repro.core.stream_distance import (
    StreamDistanceConfig,
    directed_distances,
    stream_distance,
)

from conftest import EOE, EX, IN


def stream(amplitude, cycles=12, period=3.0, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    series = PLRSeries()
    t = 0.0
    third = period / 3.0
    for _ in range(cycles):
        amp = amplitude + rng.uniform(-jitter, jitter)
        series.append(Vertex(t, (0.0,), IN))
        series.append(Vertex(t + third, (amp,), EX))
        series.append(Vertex(t + 2 * third, (0.0,), EOE))
        t += period
    series.append(Vertex(t, (0.0,), IN))
    return series


class TestStreamDistance:
    def test_symmetric(self):
        a = stream(10.0, jitter=1.0, seed=1)
        b = stream(12.0, jitter=1.0, seed=2)
        config = StreamDistanceConfig(top_p=3)
        assert stream_distance(a, b, config=config) == pytest.approx(
            stream_distance(b, a, config=config)
        )

    def test_identical_streams_near_zero(self):
        a = stream(10.0)
        d = stream_distance(a, a, config=StreamDistanceConfig(top_p=3))
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_orders_by_shape_difference(self):
        a = stream(10.0, jitter=0.5, seed=1)
        near = stream(10.5, jitter=0.5, seed=2)
        far = stream(16.0, jitter=0.5, seed=3)
        config = StreamDistanceConfig(top_p=3, use_source_weight=False)
        assert stream_distance(a, near, config=config) < stream_distance(
            a, far, config=config
        )

    def test_source_weight_inflates_cross_patient(self):
        a = stream(10.0, jitter=0.5, seed=1)
        b = stream(11.0, jitter=0.5, seed=2)
        config = StreamDistanceConfig(top_p=3)
        same = stream_distance(
            a, b, relation=SourceRelation.SAME_PATIENT, config=config
        )
        other = stream_distance(
            a, b, relation=SourceRelation.OTHER_PATIENT, config=config
        )
        assert other == pytest.approx(same * (0.9 / 0.3))

    def test_outlier_queries_dropped(self):
        a = stream(10.0, cycles=12)
        b = stream(10.0, cycles=2)  # too few windows for top_p
        config = StreamDistanceConfig(top_p=10)
        # Fallback to top_p=1 keeps the pair comparable.
        d = stream_distance(a, b, config=config)
        assert math.isfinite(d)

    def test_incomparable_streams_inf(self):
        a = stream(10.0, cycles=4)
        # A stream whose state pattern (all EX) never occurs in `a`.
        c = PLRSeries()
        for i in range(10):
            c.append(Vertex(float(i), (float(i),), EX))
        assert math.isinf(stream_distance(a, c))

    def test_directed_distances_count(self):
        a = stream(10.0, cycles=10, jitter=0.3, seed=1)
        b = stream(10.0, cycles=10, jitter=0.3, seed=2)
        config = StreamDistanceConfig(top_p=2)
        retained = directed_distances(
            a, b, SourceRelation.OTHER_PATIENT, config
        )
        # Each retained query contributes exactly top_p distances.
        assert len(retained) % config.top_p == 0
        assert all(d >= 0 for d in retained)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamDistanceConfig(query_vertices=1)
        with pytest.raises(ValueError):
            StreamDistanceConfig(top_p=0)
