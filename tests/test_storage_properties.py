"""Property-based storage equivalence: compaction + reopen is invisible.

For any random interleaving of stream adds, vertex appends, amendments,
stream removals and compactions, a :class:`LoggedBackend` that is
compacted mid-stream, closed and reopened must present *byte-identical*
PLR series — and index postings equivalent down to the feature columns —
to a reference database that executed the same script and was never
closed.

The reference side runs on the backend selected by
``REPRO_TEST_BACKEND`` (the CI matrix), so the property doubles as an
in-memory-vs-logged cross-check; the durable side is always a
``LoggedBackend`` in its own directory.
"""

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import SubsequenceMatcher
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.database.backend import LoggedBackend
from repro.database.index import StateSignatureIndex
from repro.database.store import MotionDatabase

from conftest import make_test_database

_STATES = (
    BreathingState.IN,
    BreathingState.EX,
    BreathingState.EOE,
    BreathingState.IRR,
)

#: Window lengths the index comparison sweeps.
_LENGTHS = (3, 4)


def _vertex_params(draw):
    state = draw(st.sampled_from(range(len(_STATES))))
    position = draw(
        st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False)
    )
    delta = draw(st.floats(0.5, 2.0, allow_nan=False, allow_infinity=False))
    return state, position, delta


@st.composite
def _script(draw):
    """A random operation interleaving over up to three streams."""
    ops = []
    n_ops = draw(st.integers(3, 14))
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ("add", "append", "append", "amend", "remove", "compact")
            )
        )
        idx = draw(st.integers(0, 2))
        if kind == "add":
            n_initial = draw(st.integers(0, 5))
            initial = [_vertex_params(draw) for _ in range(n_initial)]
            ops.append(("add", idx, initial))
        elif kind == "append":
            n = draw(st.integers(1, 4))
            ops.append(("append", idx, [_vertex_params(draw) for _ in range(n)]))
        elif kind == "amend":
            ops.append(("amend", idx, draw(st.integers(0, 3))))
        elif kind == "remove":
            ops.append(("remove", idx))
        else:
            ops.append(("compact",))
    return ops


def _stream_id(idx):
    return f"P0/S{idx:02d}"


def _apply(db, ops, clocks, index=None):
    """Execute the script; ``index`` marks the durable side (compactions
    export its buffers).  The reference side ignores ``compact`` ops."""
    for op in ops:
        kind = op[0]
        if kind == "add":
            _, idx, initial = op
            sid = _stream_id(idx)
            if sid in db:
                continue
            series = PLRSeries()
            t = clocks.get(sid, 0.0)
            for state, position, delta in initial:
                t += delta
                series.append(Vertex(t, (position,), _STATES[state]))
            clocks[sid] = t
            db.add_stream("P0", f"S{idx:02d}", series=series, stream_id=sid)
        elif kind == "append":
            _, idx, vertices = op
            sid = _stream_id(idx)
            if sid not in db:
                continue
            series = db.stream(sid).series
            t = clocks[sid]
            batch = []
            for state, position, delta in vertices:
                t += delta
                batch.append(Vertex(t, (position,), _STATES[state]))
            clocks[sid] = t
            # Mirror the ingest path: live series and journal advance
            # together.
            for vertex in batch:
                series.append(vertex)
            db.commit_vertices(sid, batch)
        elif kind == "amend":
            _, idx, state = op
            sid = _stream_id(idx)
            if sid not in db or len(db.stream(sid).series) == 0:
                continue
            series = db.stream(sid).series
            old = series.vertex(-1)
            amended = Vertex(old.time, old.position, _STATES[state])
            series.replace_last(amended)
            db.amend_vertex(sid, amended)
        elif kind == "remove":
            sid = _stream_id(op[1])
            if sid not in db:
                continue
            db.remove_stream(sid)
        elif kind == "compact" and index is not None:
            _touch(index, db)
            db.compact(index=index)


def _signatures(db, m):
    seen = set()
    for record in db.iter_streams():
        states = record.series.states
        for start in range(len(record.series) - m + 1):
            seen.add(tuple(int(s) for s in states[start : start + m - 1]))
    return sorted(seen)


def _touch(index, db):
    """Force catch-up on the sweep lengths so exports carry postings."""
    for m in _LENGTHS:
        for signature in _signatures(db, m):
            index.candidates(signature)


def _candidate_table(index, db):
    """Every posting the index answers for the sweep lengths, with the
    full feature columns — the byte-level equivalence witness."""
    table = {}
    for m in _LENGTHS:
        for signature in _signatures(db, m):
            candidates = index.candidates(signature)
            if candidates is None:
                table[signature] = ()
                continue
            rows = sorted(
                (
                    str(candidates.stream_ids[i]),
                    int(candidates.starts[i]),
                    candidates.amplitudes[i].tobytes(),
                    candidates.durations[i].tobytes(),
                )
                for i in range(candidates.n_candidates)
            )
            table[signature] = tuple(rows)
    return table


class TestCompactionTransparency:
    @settings(max_examples=25, deadline=None)
    @given(ops=_script())
    def test_snapshot_reopen_replay_is_byte_identical(self, ops):
        reference = make_test_database()
        reference.add_patient("P0")
        _apply(reference, ops, clocks={})

        tmp = tempfile.TemporaryDirectory(prefix="repro-prop-")
        durable = MotionDatabase(backend=LoggedBackend(tmp.name))
        durable.add_patient("P0")
        durable_index = StateSignatureIndex(durable)
        _apply(durable, ops, clocks={}, index=durable_index)
        durable.close()

        reopened = MotionDatabase(backend=LoggedBackend(tmp.name))
        try:
            assert reopened.stream_ids == reference.stream_ids
            for sid in reference.stream_ids:
                a = reference.stream(sid).series
                b = reopened.stream(sid).series
                np.testing.assert_array_equal(a.times, b.times)
                np.testing.assert_array_equal(a.positions, b.positions)
                np.testing.assert_array_equal(a.states, b.states)

            # Index postings: the reopened matcher (restored from the
            # snapshot's buffers when one was cut) must answer exactly
            # like a fresh index over the reference database.
            restored = SubsequenceMatcher(reopened).index
            fresh = StateSignatureIndex(reference)
            assert _candidate_table(restored, reopened) == _candidate_table(
                fresh, reference
            )
        finally:
            reopened.close()
            tmp.cleanup()
