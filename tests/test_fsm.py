"""Unit tests for the finite state automaton."""

import pytest

from repro.core.fsm import (
    RESPIRATORY_TRANSITIONS,
    FiniteStateAutomaton,
    respiratory_fsa,
)

from conftest import EOE, EX, IN, IRR


class TestConstruction:
    def test_respiratory_factory(self):
        fsa = respiratory_fsa()
        assert fsa.irregular is IRR
        assert set(fsa.regular_states) == {EX, EOE, IN}

    def test_irregular_must_be_known(self):
        with pytest.raises(ValueError):
            FiniteStateAutomaton((EX, EOE), RESPIRATORY_TRANSITIONS, IRR)

    def test_transitions_use_known_states(self):
        with pytest.raises(ValueError):
            FiniteStateAutomaton((EX, IRR), frozenset({(EX, EOE)}), IRR)

    def test_self_transitions_rejected(self):
        with pytest.raises(ValueError):
            FiniteStateAutomaton(
                tuple([EX, EOE, IN, IRR]), frozenset({(EX, EX)}), IRR
            )


class TestQueries:
    @pytest.fixture
    def fsa(self):
        return respiratory_fsa()

    def test_regular_cycle_allowed(self, fsa):
        assert fsa.is_regular_transition(EX, EOE)
        assert fsa.is_regular_transition(EOE, IN)
        assert fsa.is_regular_transition(IN, EX)

    def test_reverse_not_regular(self, fsa):
        assert not fsa.is_regular_transition(EOE, EX)
        assert not fsa.is_regular_transition(EX, IN)

    def test_allows_into_and_out_of_irregular(self, fsa):
        assert fsa.allows(EX, IRR)
        assert fsa.allows(IRR, EOE)

    def test_is_regular_sequence(self, fsa):
        assert fsa.is_regular_sequence([EX, EOE, IN, EX, EOE])
        assert not fsa.is_regular_sequence([EX, IN])
        assert not fsa.is_regular_sequence([EX, IRR, EOE])

    def test_validate_sequence(self, fsa):
        assert fsa.validate_sequence([EX, IRR, IN, EX])
        assert not fsa.validate_sequence([EX, IN])
        assert not fsa.validate_sequence(["nope"])

    def test_expected_next_deterministic(self, fsa):
        assert fsa.expected_next(EX) is EOE
        assert fsa.expected_next(EOE) is IN
        assert fsa.expected_next(IN) is EX
        assert fsa.expected_next(IRR) is None


class TestStepping:
    @pytest.fixture
    def fsa(self):
        return respiratory_fsa()

    def test_cold_start_accepts_anything(self, fsa):
        assert fsa.step(EOE) is EOE

    def test_regular_walk(self, fsa):
        assert fsa.run([EX, EOE, IN, EX]) == [EX, EOE, IN, EX]

    def test_illegal_transition_coerced_to_irregular(self, fsa):
        assert fsa.run([EX, IN]) == [EX, IRR]

    def test_recovery_from_irregular(self, fsa):
        assert fsa.run([EX, IN, EOE]) == [EX, IRR, EOE]

    def test_same_state_repeat_allowed(self, fsa):
        assert fsa.run([EX, EX, EOE]) == [EX, EX, EOE]

    def test_unknown_state_raises(self, fsa):
        with pytest.raises(ValueError):
            fsa.step("bogus")

    def test_reset(self, fsa):
        fsa.step(EX)
        fsa.reset()
        assert fsa.current is None

    def test_copy_independent(self, fsa):
        fsa.step(EX)
        clone = fsa.copy()
        clone.step(EOE)
        assert fsa.current is EX
        assert clone.current is EOE
