"""Tests for Definition 1 (subsequence stability)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PLRSeries, Vertex
from repro.core.stability import (
    StabilityConfig,
    is_stable,
    subsequence_stability,
)

from conftest import EOE, EX, IN


def jittered_series(amp_jitter=0.0, dur_jitter=0.0, seed=0, cycles=5):
    """Regular cycles with controlled per-segment jitter."""
    rng = np.random.default_rng(seed)
    series = PLRSeries()
    t = 0.0
    for _ in range(cycles):
        amp = 10.0 + rng.uniform(-amp_jitter, amp_jitter)
        d_in = 1.0 + rng.uniform(-dur_jitter, dur_jitter)
        d_ex = 1.0 + rng.uniform(-dur_jitter, dur_jitter)
        d_eoe = 1.0 + rng.uniform(-dur_jitter, dur_jitter)
        series.append(Vertex(t, (0.0,), IN))
        series.append(Vertex(t + d_in, (amp,), EX))
        series.append(Vertex(t + d_in + d_ex, (0.0,), EOE))
        t += d_in + d_ex + d_eoe
    series.append(Vertex(t, (0.0,), IN))
    return series


class TestStability:
    def test_perfectly_regular_is_zero(self, regular_series):
        whole = regular_series.subsequence(0, len(regular_series))
        assert subsequence_stability(whole) == pytest.approx(0.0)

    def test_jitter_increases_score(self):
        calm = jittered_series(amp_jitter=0.2, dur_jitter=0.02)
        wild = jittered_series(amp_jitter=3.0, dur_jitter=0.5)
        s_calm = subsequence_stability(calm.subsequence(0, len(calm)))
        s_wild = subsequence_stability(wild.subsequence(0, len(wild)))
        assert s_calm < s_wild

    def test_amplitude_weight_scales_amp_term(self):
        series = jittered_series(amp_jitter=2.0, dur_jitter=0.0)
        sub = series.subsequence(0, len(series))
        half = subsequence_stability(
            sub, StabilityConfig(amplitude_weight=0.5, frequency_weight=0.25)
        )
        full = subsequence_stability(
            sub, StabilityConfig(amplitude_weight=1.0, frequency_weight=0.25)
        )
        assert half == pytest.approx(full / 2.0)

    def test_frequency_weight_scales_dur_term(self):
        series = jittered_series(amp_jitter=0.0, dur_jitter=0.4)
        sub = series.subsequence(0, len(series))
        s1 = subsequence_stability(
            sub, StabilityConfig(amplitude_weight=1.0, frequency_weight=0.25)
        )
        s2 = subsequence_stability(
            sub, StabilityConfig(amplitude_weight=1.0, frequency_weight=0.5)
        )
        assert s2 == pytest.approx(2.0 * s1)

    def test_states_grouped_separately(self):
        # Alternating amplitudes within one state create deviations; the
        # same values split across states do not.
        series = PLRSeries()
        series.append(Vertex(0.0, (0.0,), IN))
        series.append(Vertex(1.0, (8.0,), EX))
        series.append(Vertex(2.0, (0.0,), EOE))
        series.append(Vertex(3.0, (0.0,), IN))
        series.append(Vertex(4.0, (12.0,), EX))
        series.append(Vertex(5.0, (0.0,), EOE))
        series.append(Vertex(6.0, (0.0,), IN))
        sub = series.subsequence(0, len(series))
        # IN amps are 8 and 12 (dev 2 each); EX amps 8 and 12 likewise.
        score = subsequence_stability(
            sub, StabilityConfig(amplitude_weight=1.0, frequency_weight=0.0)
        )
        assert score == pytest.approx(8.0)

    def test_relative_variant_unit_free(self):
        series = jittered_series(amp_jitter=2.0, dur_jitter=0.2, seed=3)
        scaled = PLRSeries()
        for v in series:
            scaled.append(Vertex(v.time, tuple(10 * p for p in v.position), v.state))
        config = StabilityConfig(relative=True)
        s1 = subsequence_stability(series.subsequence(0, len(series)), config)
        s2 = subsequence_stability(scaled.subsequence(0, len(scaled)), config)
        assert s1 == pytest.approx(s2, rel=1e-9)

    def test_empty_window_raises(self, regular_series):
        with pytest.raises(ValueError):
            subsequence_stability(regular_series.subsequence(0, 1))

    def test_is_stable_threshold(self):
        series = jittered_series(amp_jitter=3.0, dur_jitter=0.5, seed=1)
        sub = series.subsequence(0, len(series))
        score = subsequence_stability(sub)
        assert is_stable(sub, StabilityConfig(threshold=score + 1.0))
        assert not is_stable(sub, StabilityConfig(threshold=score - 1.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StabilityConfig(amplitude_weight=-1.0)
        with pytest.raises(ValueError):
            StabilityConfig(threshold=-0.1)


@settings(max_examples=40, deadline=None)
@given(
    amp_jitter=st.floats(min_value=0.0, max_value=4.0),
    dur_jitter=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_stability_nonnegative_and_monotone_in_weights(
    amp_jitter, dur_jitter, seed
):
    series = jittered_series(amp_jitter, dur_jitter, seed)
    sub = series.subsequence(0, len(series))
    score = subsequence_stability(sub)
    assert score >= 0.0
    heavier = subsequence_stability(
        sub, StabilityConfig(amplitude_weight=2.0, frequency_weight=0.5)
    )
    assert heavier >= score - 1e-12
