"""Vectorised prediction-plan engine vs the frozen scalar reference.

The plan kernel (``core/prediction.PredictionPlan``) and the session
service's fleet dispatch must be **byte-identical** to the naive scalar
loop frozen in ``testing/oracle.reference_prediction`` — every test here
asserts exact float equality (``np.array_equal``), not closeness.
"""

import copy
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import SubsequenceMatcher
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.core.online import OnlineAnalysisSession, OnlineSessionConfig
from repro.core.prediction import (
    OnlinePredictor,
    build_prediction_plan,
    horizon_grid,
)
from repro.database.store import MotionDatabase
from repro.obs.telemetry import Telemetry
from repro.service.manager import _FleetDispatch
from repro.signals.respiratory import RespiratorySimulator, SessionConfig
from repro.testing.oracle import reference_prediction

from conftest import EOE, EX, IN


def random_breathing_plr(rng, n_vertices, ndim=1):
    """A random periodic-ish PLR with ``ndim`` position components."""
    series = PLRSeries()
    t = float(rng.uniform(0.0, 2.0))
    order = [IN, EX, EOE]
    position = rng.uniform(-5.0, 5.0, ndim)
    cursor = int(rng.integers(0, 3))
    for _ in range(n_vertices):
        state = order[cursor % 3]
        cursor += 1
        series.append(Vertex(t, tuple(float(x) for x in position), state))
        t += float(rng.uniform(0.3, 1.8))
        step = float(rng.uniform(3.0, 12.0))
        if state is IN:
            position = position + step * rng.uniform(0.5, 1.5, ndim)
        elif state is EX:
            position = position - step * rng.uniform(0.5, 1.5, ndim)
        else:
            position = position + rng.uniform(-0.4, 0.4, ndim)
    return series


def random_setup(seed, ndim=1, n_streams=3):
    """Database, query and matches over random streams (threshold=inf)."""
    rng = np.random.default_rng(seed)
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_patient("PB")
    for k in range(n_streams):
        db.add_stream(
            "PA" if k % 2 == 0 else "PB",
            f"H{k}",
            series=random_breathing_plr(rng, int(rng.integers(9, 30)), ndim),
        )
    live = random_breathing_plr(rng, int(rng.integers(7, 14)), ndim)
    db.add_stream("PA", "LIVE", series=live)
    matcher = SubsequenceMatcher(db)
    query = live.suffix(int(rng.integers(3, min(7, len(live)))) + 1)
    matches = matcher.find_matches(query, "PA/LIVE", threshold=math.inf)
    return db, matcher, query, matches


class TestPlanEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        horizon=st.floats(min_value=0.0, max_value=40.0),
        min_matches=st.integers(min_value=1, max_value=4),
        ndim=st.integers(min_value=1, max_value=3),
        anchor=st.sampled_from(["last", "first"]),
        distance_weighted=st.booleans(),
    )
    def test_serve_byte_identical_to_reference(
        self, seed, horizon, min_matches, ndim, anchor, distance_weighted
    ):
        """plan.serve == frozen scalar loop, including decline agreement.

        Horizons up to 40 s reach far past the packed tail window, so the
        per-row ``position_at`` fallback and end-of-stream clamping are
        exercised, not just the common narrow-horizon path.
        """
        db, matcher, query, matches = random_setup(seed, ndim=ndim)
        expected = reference_prediction(
            db,
            query,
            matches,
            horizon,
            params=matcher.params,
            min_matches=min_matches,
            anchor=anchor,
            distance_weighted=distance_weighted,
        )
        plan = build_prediction_plan(
            db,
            query,
            matches,
            params=matcher.params,
            anchor=anchor,
            distance_weighted=distance_weighted,
        )
        served, n_usable = plan.serve(horizon, min_matches=min_matches)
        if expected is None:
            assert served is None
            assert n_usable < max(min_matches, 1)
        else:
            assert served is not None
            assert np.array_equal(expected, served)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_horizons=st.integers(min_value=1, max_value=12),
        min_matches=st.integers(min_value=1, max_value=3),
    )
    def test_serve_many_equals_per_horizon_serves(
        self, seed, n_horizons, min_matches
    ):
        """One batched grid dispatch == n independent serves, bitwise."""
        rng = np.random.default_rng(seed)
        db, matcher, query, matches = random_setup(seed)
        plan = build_prediction_plan(db, query, matches, matcher.params)
        horizons = rng.uniform(0.0, 30.0, n_horizons)
        batched = plan.serve_many(horizons, min_matches=min_matches)
        assert len(batched) == n_horizons
        for h, got in zip(horizons, batched):
            expected, _ = plan.serve(float(h), min_matches=min_matches)
            if expected is None:
                assert got is None
            else:
                assert np.array_equal(expected, got)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        horizon=st.floats(min_value=0.0, max_value=25.0),
    )
    def test_combine_is_the_scalar_loop(self, seed, horizon):
        """OnlinePredictor.combine (plan-backed) == its frozen loop."""
        db, matcher, query, matches = random_setup(seed)
        if not matches:
            return
        predictor = OnlinePredictor(db, matcher, min_matches=1)
        assert np.array_equal(
            predictor.combine(query, matches, horizon),
            predictor._combine_scalar(query, matches, horizon),
        )

    def test_combine_negative_horizon_uses_scalar_path(self):
        db, matcher, query, matches = random_setup(3)
        assert matches, "vacuous fixture"
        predictor = OnlinePredictor(db, matcher, min_matches=1)
        assert np.array_equal(
            predictor.combine(query, matches, -0.4),
            predictor._combine_scalar(query, matches, -0.4),
        )

    def test_empty_matches(self):
        db, matcher, query, _ = random_setup(5)
        plan = build_prediction_plan(db, query, [], matcher.params)
        assert plan.serve(0.2) == (None, 0)
        assert plan.serve_many([0.1, 0.2]) == [None, None]
        with pytest.raises(ValueError):
            plan.combine_at(0.2)


class TestFleetDispatch:
    class _FakeSession:
        """Just enough session surface for _FleetDispatch (min_matches)."""

        def __init__(self, min_matches):
            self.config = OnlineSessionConfig(min_matches=min_matches)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tenants=st.integers(min_value=1, max_value=5),
    )
    def test_stacked_serve_byte_identical_per_row(self, seed, n_tenants):
        """Padded fleet rows == each tenant's own plan.serve, bitwise."""
        rng = np.random.default_rng(seed)
        rows = []
        for k in range(n_tenants):
            db, matcher, query, matches = random_setup(
                seed * 31 + k, ndim=2
            )
            if not matches:
                continue
            plan = build_prediction_plan(db, query, matches, matcher.params)
            rows.append(
                (self._FakeSession(int(rng.integers(1, 4))), plan)
            )
        if not rows:
            return
        fleet = _FleetDispatch([s for s, _ in rows], [p for _, p in rows])
        horizons = rng.uniform(0.0, 30.0, len(rows))
        served, counts, positions = fleet.serve(horizons)
        for k, (session, plan) in enumerate(rows):
            expected, n_usable = plan.serve(
                float(horizons[k]), min_matches=session.config.min_matches
            )
            assert counts[k] == n_usable
            if expected is None:
                assert not served[k]
            else:
                assert served[k]
                assert np.array_equal(expected, positions[k])


class TestHorizonGrid:
    def test_values(self):
        np.testing.assert_array_equal(
            horizon_grid(4, 0.5), [0.5, 1.0, 1.5, 2.0]
        )

    def test_memoised_and_read_only(self):
        a = horizon_grid(8, 0.25)
        assert horizon_grid(8, 0.25) is a
        assert horizon_grid(8, 0.5) is not a
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 99.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            horizon_grid(0, 0.5)
        with pytest.raises(ValueError):
            horizon_grid(4, 0.0)


# -- live-session plan cache and counters --------------------------------------


@pytest.fixture
def telemetry_session(small_cohort):
    pid = small_cohort.patient_ids[0]
    raw = RespiratorySimulator(
        small_cohort.profile(pid), SessionConfig(duration=30.0)
    ).generate_session(5, seed=21)
    telemetry = Telemetry()
    # Own copy: the session (and the epoch tests) mutate the database,
    # and small_cohort is shared session-wide.
    db = copy.deepcopy(small_cohort.db)
    session = OnlineAnalysisSession(
        db,
        pid,
        session_id="PLAN-TEST",
        config=OnlineSessionConfig(),
        telemetry=telemetry,
    )
    yield session, raw, telemetry


def _warm_up(session, points):
    """Feed samples until the first query exists; return the iterator."""
    for t, position in points:
        session.observe(t, position)
        if session.query is not None and session.matches:
            return
    pytest.fail("session never warmed up")


class TestSessionPlanCache:
    def test_build_once_then_cache_hits(self, telemetry_session):
        session, raw, telemetry = telemetry_session
        points = raw.iter_points()
        _warm_up(session, points)
        for _ in range(3):
            assert session.predict_ahead(0.2) is not None
        snap = telemetry.registry.snapshot()
        assert snap.counter("prediction.plan_builds") == 1
        assert snap.counter("prediction.plan_cache_hits") == 2
        assert snap.histograms["prediction.plan_build_s"].count == 1

    def test_refresh_invalidates(self, telemetry_session):
        session, raw, telemetry = telemetry_session
        points = raw.iter_points()
        _warm_up(session, points)
        session.predict_ahead(0.2)
        refreshes = telemetry.registry.snapshot().counter(
            "session.query_refreshes"
        )
        for t, position in points:
            session.observe(t, position)
            snap = telemetry.registry.snapshot()
            if snap.counter("session.query_refreshes") > refreshes:
                break
        session.predict_ahead(0.2)
        snap = telemetry.registry.snapshot()
        assert snap.counter("prediction.plan_cache_invalidations") >= 1
        assert snap.counter("prediction.plan_builds") == 2

    def test_stream_removal_forces_rebuild(self, telemetry_session):
        session, raw, telemetry = telemetry_session
        db = session.db
        db.add_patient("EPOCH-DUMMY")
        db.add_stream(
            "EPOCH-DUMMY",
            "X",
            series=random_breathing_plr(np.random.default_rng(0), 6),
        )
        points = raw.iter_points()
        _warm_up(session, points)
        before = session.predict_ahead(0.2)
        db.remove_stream("EPOCH-DUMMY/X")
        after = session.predict_ahead(0.2)
        snap = telemetry.registry.snapshot()
        # The epoch bump forces a rebuild, and (no matches changed) the
        # rebuilt plan serves the same bytes.
        assert snap.counter("prediction.plan_builds") == 2
        assert np.array_equal(before, after)


class TestPredictionsTotalCounter:
    def test_declines_count_in_totals(self, telemetry_session):
        """Regression: warm-up declines used to vanish from rate metrics —
        they skipped the timed path without incrementing any request
        counter.  Every answered predict_at now lands in
        ``session.predictions_total`` = served + declined."""
        session, raw, telemetry = telemetry_session
        points = raw.iter_points()
        t, position = next(points)
        session.observe(t, position)
        assert session.predict_ahead(0.2) is None  # warm-up decline
        snap = telemetry.registry.snapshot()
        assert snap.counter("session.predictions_total") == 1
        assert snap.counter("session.predictions_declined") == 1
        assert snap.counter("session.predictions_served") == 0
        _warm_up(session, points)
        assert session.predict_ahead(0.2) is not None
        snap = telemetry.registry.snapshot()
        assert snap.counter("session.predictions_total") == snap.counter(
            "session.predictions_served"
        ) + snap.counter("session.predictions_declined")
