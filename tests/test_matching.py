"""Tests for the subsequence matcher."""

import math

import pytest

from repro.core.matching import SubsequenceMatcher
from repro.core.model import PLRSeries, Vertex
from repro.core.similarity import SimilarityParams, SourceRelation
from repro.database.store import MotionDatabase

from conftest import EOE, EX, IN


def series_with_amp(amplitude, cycles=4, period=3.0):
    series = PLRSeries()
    t = 0.0
    third = period / 3.0
    for _ in range(cycles):
        series.append(Vertex(t, (0.0,), IN))
        series.append(Vertex(t + third, (amplitude,), EX))
        series.append(Vertex(t + 2 * third, (0.0,), EOE))
        t += period
    series.append(Vertex(t, (0.0,), IN))
    return series


@pytest.fixture
def db():
    database = MotionDatabase()
    database.add_patient("PA")
    database.add_patient("PB")
    database.add_stream("PA", "S00", series=series_with_amp(10.0, cycles=8))
    database.add_stream("PA", "S01", series=series_with_amp(11.0))
    database.add_stream("PB", "S00", series=series_with_amp(14.0))
    return database


@pytest.fixture
def matcher(db):
    return SubsequenceMatcher(db)


class TestFindMatches:
    def test_finds_exact_match_first(self, db, matcher):
        query = db.stream("PA/S01").series.subsequence(0, 7)
        matches = matcher.find_matches(query, "PA/S01", threshold=math.inf)
        assert matches
        best = matches[0]
        # The closest candidates are the (identical) windows of PA/S01
        # itself that do not overlap the query — or PA/S00's near-identical
        # windows scaled by the cross-session weight.
        assert best.distance <= matches[-1].distance

    def test_sorted_by_distance(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        matches = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_overlap_excluded(self, db, matcher):
        series = db.stream("PA/S00").series
        query = series.suffix(7)
        matches = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        for m in matches:
            if m.stream_id == "PA/S00":
                assert m.start + m.n_vertices <= query.start

    def test_threshold_filters(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        all_matches = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        some = matcher.find_matches(query, "PA/S00", threshold=1.0)
        assert len(some) <= len(all_matches)
        assert all(m.distance <= 1.0 for m in some)

    def test_max_matches(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        top2 = matcher.find_matches(
            query, "PA/S00", threshold=math.inf, max_matches=2
        )
        assert len(top2) == 2

    def test_restrict_patients(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        matches = matcher.find_matches(
            query, "PA/S00", threshold=math.inf, restrict_patients=("PB",)
        )
        assert matches
        assert all(m.stream_id.startswith("PB/") for m in matches)

    def test_relations_assigned(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        matches = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        by_stream = {m.stream_id: m.relation for m in matches}
        assert by_stream["PA/S00"] is SourceRelation.SAME_SESSION
        assert by_stream["PA/S01"] is SourceRelation.SAME_PATIENT
        assert by_stream["PB/S00"] is SourceRelation.OTHER_PATIENT

    def test_no_stream_id_treats_all_as_other(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        matches = matcher.find_matches(query, None, threshold=math.inf)
        assert all(
            m.relation is SourceRelation.OTHER_PATIENT for m in matches
        )

    def test_no_candidates(self, db, matcher):
        # A signature that never occurs (three rests in a row).
        series = PLRSeries()
        for i, state in enumerate((EOE, EOE, EOE, EOE)):
            series.append(Vertex(float(i), (0.0,), state))
        query = series.subsequence(0, 4)
        assert matcher.find_matches(query, None, threshold=math.inf) == []

    def test_match_materialisation(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        match = matcher.find_matches(query, "PA/S00", threshold=math.inf)[0]
        sub = match.subsequence(db)
        assert sub.n_vertices == query.n_vertices
        assert sub.state_signature == query.state_signature


class TestDeterministicOrdering:
    def test_ties_break_by_stream_then_start(self):
        """Equal distances order by (stream_id, start), not insertion
        order — retrieval is reproducible across runs and platforms."""
        database = MotionDatabase()
        database.add_patient("PZ")
        database.add_patient("PA")
        # Identical series inserted in anti-lexicographic order.
        database.add_stream("PZ", "S00", series=series_with_amp(10.0))
        database.add_stream("PA", "S00", series=series_with_amp(10.0))
        matcher = SubsequenceMatcher(database)
        query = database.stream("PA/S00").series.subsequence(0, 7)
        matches = matcher.find_matches(query, None, threshold=math.inf)
        keys = [(m.distance, m.stream_id, m.start) for m in matches]
        assert keys == sorted(keys)
        # All windows tie pairwise across the two identical streams, so
        # PA must come before PZ at every tied distance.
        zero = [m for m in matches if m.distance == 0.0]
        assert zero and zero[0].stream_id == "PA/S00"

    def test_index_and_scan_order_identically(self, db):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        indexed = SubsequenceMatcher(db, use_index=True)
        scanning = SubsequenceMatcher(db, use_index=False)
        a = indexed.find_matches(query, "PA/S00", threshold=math.inf)
        b = scanning.find_matches(query, "PA/S00", threshold=math.inf)
        assert [(m.stream_id, m.start) for m in a] == [
            (m.stream_id, m.start) for m in b
        ]


class TestTopK:
    def test_equals_full_sort_truncation(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        full = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        for k in (1, 2, 3, len(full), len(full) + 5):
            topk = matcher.find_matches(
                query, "PA/S00", threshold=math.inf, max_matches=k
            )
            assert [(m.stream_id, m.start, m.distance) for m in topk] == [
                (m.stream_id, m.start, m.distance) for m in full[:k]
            ]

    def test_boundary_ties_respect_tiebreak(self):
        """When the k-th and (k+1)-th candidates tie on distance, the
        (stream_id, start) tie-break decides which survives."""
        database = MotionDatabase()
        database.add_patient("PZ")
        database.add_patient("PA")
        database.add_stream("PZ", "S00", series=series_with_amp(10.0))
        database.add_stream("PA", "S00", series=series_with_amp(10.0))
        matcher = SubsequenceMatcher(database)
        query = database.stream("PA/S00").series.subsequence(0, 7)
        full = matcher.find_matches(query, None, threshold=math.inf)
        for k in range(1, len(full) + 1):
            topk = matcher.find_matches(
                query, None, threshold=math.inf, max_matches=k
            )
            assert [(m.stream_id, m.start) for m in topk] == [
                (m.stream_id, m.start) for m in full[:k]
            ]


class TestParallelScan:
    def test_pool_matches_serial(self, db):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        serial = SubsequenceMatcher(db, use_index=False)
        pooled = SubsequenceMatcher(db, use_index=False, scan_workers=3)
        a = serial.find_matches(query, "PA/S00", threshold=math.inf)
        b = pooled.find_matches(query, "PA/S00", threshold=math.inf)
        assert [(m.stream_id, m.start, m.distance) for m in a] == [
            (m.stream_id, m.start, m.distance) for m in b
        ]

    def test_invalid_workers_rejected(self, db):
        with pytest.raises(ValueError):
            SubsequenceMatcher(db, use_index=False, scan_workers=0)


class TestScanEquivalence:
    def test_index_equals_scan(self, db):
        indexed = SubsequenceMatcher(db, use_index=True)
        scanning = SubsequenceMatcher(db, use_index=False)
        query = db.stream("PA/S01").series.subsequence(2, 9)
        a = indexed.find_matches(query, "PA/S01", threshold=math.inf)
        b = scanning.find_matches(query, "PA/S01", threshold=math.inf)
        assert [(m.stream_id, m.start, round(m.distance, 9)) for m in a] == [
            (m.stream_id, m.start, round(m.distance, 9)) for m in b
        ]

    def test_per_call_params_override(self, db, matcher):
        query = db.stream("PA/S00").series.subsequence(0, 7)
        default = matcher.find_matches(query, "PA/S00", threshold=math.inf)
        unweighted = matcher.find_matches(
            query,
            "PA/S00",
            threshold=math.inf,
            params=SimilarityParams().unweighted(),
        )
        d_default = {(m.stream_id, m.start): m.distance for m in default}
        d_unweighted = {
            (m.stream_id, m.start): m.distance for m in unweighted
        }
        # Cross-patient candidates lose their penalty without weighting.
        key = next(k for k in d_default if k[0] == "PB/S00")
        assert d_unweighted[key] < d_default[key]
