"""Tests for the Section 6 generalised framework and its domains."""

import math

import numpy as np
import pytest

from repro.core.framework import DomainSpec, StructuredMotionAnalyzer
from repro.core.model import BreathingState
from repro.signals.domains import (
    dual_dwell_fsa,
    heartbeat_signal,
    heartbeat_spec,
    robot_arm_signal,
    robot_arm_spec,
    tide_signal,
    tide_spec,
)

IN = BreathingState.IN
EX = BreathingState.EX
EOE = BreathingState.EOE
IRR = BreathingState.IRR


class TestDualDwellFSA:
    def test_dwell_follows_both_moves(self):
        fsa = dual_dwell_fsa()
        assert fsa.is_regular_transition(IN, EOE)
        assert fsa.is_regular_transition(EX, EOE)
        assert fsa.is_regular_transition(EOE, IN)
        assert fsa.is_regular_transition(EOE, EX)
        assert not fsa.is_regular_transition(IN, EX)

    def test_expected_next_ambiguous_for_dwell(self):
        fsa = dual_dwell_fsa()
        assert fsa.expected_next(EOE) is None
        assert fsa.expected_next(IN) is EOE


class TestDomainSpec:
    def test_describe_state(self):
        spec = tide_spec()
        assert spec.describe_state(IN) == "flood"
        assert spec.describe_state(IRR) == "surge"

    def test_default_spec_is_respiratory(self):
        spec = DomainSpec(name="resp")
        assert spec.fsa.is_regular_transition(EX, EOE)


@pytest.mark.parametrize(
    "spec_factory,generator,kwargs,expected_pairs",
    [
        (
            heartbeat_spec,
            heartbeat_signal,
            {"duration": 30.0},
            {(IN, EX), (EX, EOE), (EOE, IN)},
        ),
        (
            robot_arm_spec,
            robot_arm_signal,
            {"duration": 60.0},
            {(IN, EOE), (EOE, EX), (EX, EOE), (EOE, IN)},
        ),
        (
            tide_spec,
            tide_signal,
            {"duration_hours": 120.0},
            {(IN, EOE), (EOE, EX), (EX, EOE), (EOE, IN)},
        ),
    ],
)
def test_domain_segmentation_follows_its_automaton(
    spec_factory, generator, kwargs, expected_pairs
):
    spec = spec_factory()
    t, x = generator(seed=0, **kwargs)
    analyzer = StructuredMotionAnalyzer(spec)
    series = analyzer.segment(t, x)
    assert len(series) > 10
    states = [BreathingState(s) for s in series.states[:-1]]
    regular = [s for s in states if s is not IRR]
    # After warm-up, consecutive regular states follow the domain automaton.
    violations = sum(
        (a, b) not in expected_pairs
        for a, b in zip(regular[2:], regular[3:])
    )
    assert violations <= max(2, len(regular) // 10)


@pytest.mark.parametrize(
    "spec_factory,generator,kwargs",
    [
        (heartbeat_spec, heartbeat_signal, {"duration": 40.0}),
        (robot_arm_spec, robot_arm_signal, {"duration": 90.0}),
        (tide_spec, tide_signal, {"duration_hours": 160.0}),
    ],
)
def test_domain_retrieval_agrees_with_oracle(spec_factory, generator, kwargs):
    """Every built-in domain, end to end, against the reference matcher.

    Two sessions are ingested through the domain's pipeline (built by
    :class:`~repro.service.PipelineBuilder`), the dynamic query is drawn
    from the second, and the production engine's retrieval under the
    domain's similarity parameters must agree exactly with the naive
    O(n·m) oracle.
    """
    from repro.testing.oracle import check_equivalence, reference_matches

    spec = spec_factory()
    analyzer = StructuredMotionAnalyzer(spec)
    for k in range(2):
        t, x = generator(seed=k, **kwargs)
        analyzer.ingest("src-1", f"run{k}", t, x)
    query = analyzer.query_for("src-1/run1")
    assert query is not None, "domain produced no stable query"
    # An unbounded threshold keeps the check about *agreement* rather
    # than each domain's recall at its default operating point.
    engine = analyzer.find_matches(query, "src-1/run1", threshold=math.inf)
    assert engine, "domain retrieval found nothing"
    oracle = reference_matches(
        analyzer.database,
        query,
        "src-1/run1",
        threshold=math.inf,
        params=spec.similarity,
    )
    check_equivalence(engine, oracle)


class TestAnalyzerPipeline:
    @pytest.fixture
    def analyzer(self):
        spec = robot_arm_spec()
        analyzer = StructuredMotionAnalyzer(spec)
        for k in range(2):
            t, x = robot_arm_signal(duration=60.0, seed=k)
            analyzer.ingest("arm-1", f"run{k}", t, x)
        return analyzer

    def test_ingest_creates_source_and_streams(self, analyzer):
        assert analyzer.database.n_patients == 1
        assert analyzer.database.n_streams == 2
        record = analyzer.database.stream("arm-1/run0")
        assert record.metadata["domain"] == "robot_arm"

    def test_query_and_matching(self, analyzer):
        query = analyzer.query_for("arm-1/run1")
        assert query is not None
        matches = analyzer.find_matches(query, "arm-1/run1")
        assert matches
        assert all(m.distance >= 0 for m in matches)

    def test_prediction(self, analyzer):
        prediction = analyzer.predict("arm-1/run1", horizon=0.3)
        assert prediction is not None
        assert np.isfinite(prediction.primary)

    def test_separate_sources_related_as_other(self, analyzer):
        t, x = robot_arm_signal(duration=30.0, seed=9)
        analyzer.ingest("arm-2", "run0", t, x)
        from repro.core.similarity import SourceRelation

        assert (
            analyzer.database.relation("arm-1/run0", "arm-2/run0")
            is SourceRelation.OTHER_PATIENT
        )
