"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import (
    MotionDatabase,
    OnlinePredictor,
    RespiratorySimulator,
    SessionConfig,
    StreamIngestor,
    SubsequenceMatcher,
    generate_population,
    generate_query,
    segment_signal,
)
from repro.gating import GatingWindow, delayed_positions, simulate_gating


@pytest.fixture(scope="module")
def pipeline():
    """History DB + live replay for one patient."""
    profiles = generate_population(3, seed=20)
    db = MotionDatabase()
    for profile in profiles:
        db.add_patient(profile.patient_id, profile.attributes)
        sim = RespiratorySimulator(profile, SessionConfig(duration=90.0))
        for k, raw in enumerate(sim.generate_sessions(2, seed=8)):
            db.add_stream(
                profile.patient_id,
                f"S{k:02d}",
                series=segment_signal(raw.times, raw.values),
            )
    live_profile = profiles[0]
    live = RespiratorySimulator(
        live_profile, SessionConfig(duration=50.0)
    ).generate_session(9, seed=77)
    return db, live_profile, live


class TestOnlinePipeline:
    def test_full_online_prediction_accuracy(self, pipeline):
        db, profile, live = pipeline
        matcher = SubsequenceMatcher(db)
        predictor = OnlinePredictor(db, matcher, min_matches=1)
        ingestor = StreamIngestor(db, profile.patient_id, "IT-LIVE")

        predictions = []
        for t, position in live.iter_points():
            if ingestor.add_point(t, position) and len(ingestor.series) > 10:
                query = generate_query(ingestor.series)
                if query is None:
                    continue
                p = predictor.predict(query, ingestor.stream_id, horizon=0.2)
                if p is not None:
                    predictions.append(p)
        ingestor.finish()
        series = ingestor.series

        assert len(predictions) > 10
        errors = [
            abs(p.primary - series.position_at(p.time)[0])
            for p in predictions
            if p.time <= series.end_time
        ]
        # Sub-millimetre mean accuracy on synthetic data.
        assert np.mean(errors) < 1.0
        db.remove_stream(ingestor.stream_id)

    def test_prediction_beats_latency_in_gating(self, pipeline):
        db, profile, live = pipeline
        matcher = SubsequenceMatcher(db)
        predictor = OnlinePredictor(db, matcher, min_matches=1)
        ingestor = StreamIngestor(db, profile.patient_id, "IT-GATE")

        latency = 0.3
        controlled = np.empty(live.n_samples)
        query, matches = None, []
        for i, (t, position) in enumerate(live.iter_points()):
            if ingestor.add_point(t, position) and len(ingestor.series) > 10:
                query = generate_query(ingestor.series)
                matches = (
                    matcher.find_matches(query, ingestor.stream_id)
                    if query is not None
                    else []
                )
            controlled[i] = position[0]
            if query is not None and matches:
                horizon = t + latency - ingestor.series.end_time
                usable = predictor.with_known_future(matches, horizon)
                if usable:
                    controlled[i] = predictor.combine(
                        query, usable, horizon
                    )[0]
        ingestor.finish()
        db.remove_stream(ingestor.stream_id)

        true_pos = live.primary
        window = GatingWindow.around_exhale(true_pos)
        delayed = delayed_positions(live.times, true_pos, latency)
        gated_delayed = simulate_gating(true_pos, delayed, window)
        gated_predicted = simulate_gating(true_pos, controlled, window)
        assert gated_predicted.precision > gated_delayed.precision

    def test_database_roundtrip_preserves_matching(self, pipeline, tmp_path):
        db, profile, live = pipeline
        path = tmp_path / "db.json"
        db.save(path)
        restored = MotionDatabase.load(path)

        series = restored.stream(restored.stream_ids[0]).series
        query = series.suffix(7)
        a = SubsequenceMatcher(db).find_matches(
            query, db.stream_ids[0], threshold=float("inf")
        )
        b = SubsequenceMatcher(restored).find_matches(
            query, restored.stream_ids[0], threshold=float("inf")
        )
        assert [(m.stream_id, m.start) for m in a] == [
            (m.stream_id, m.start) for m in b
        ]

    def test_three_dimensional_pipeline(self):
        profile = generate_population(1, seed=4)[0]
        db = MotionDatabase()
        db.add_patient(profile.patient_id, profile.attributes)
        sim = RespiratorySimulator(
            profile, SessionConfig(duration=60.0, ndim=3)
        )
        hist = sim.generate_session(0, seed=1)
        db.add_stream(
            profile.patient_id,
            "S00",
            series=segment_signal(hist.times, hist.values),
        )
        live = sim.generate_session(1, seed=2)
        ingestor = StreamIngestor(db, profile.patient_id, "LIVE")
        ingestor.extend(live.times, live.values)
        query = generate_query(ingestor.series)
        assert query is not None
        matcher = SubsequenceMatcher(db)
        predictor = OnlinePredictor(db, matcher, min_matches=1)
        prediction = predictor.predict(query, ingestor.stream_id, 0.2)
        assert prediction is not None
        assert prediction.position.shape == (3,)
