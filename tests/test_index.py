"""Tests for the state-signature index."""

import numpy as np
import pytest

from repro.core.model import Vertex
from repro.database.index import StateSignatureIndex
from repro.database.store import MotionDatabase

from conftest import EOE, EX, IN, make_series


def brute_force(db, signature):
    """All windows matching a signature, by direct scan."""
    m = len(signature) + 1
    hits = []
    for record in db.iter_streams():
        states = record.series.states
        for start in range(len(record.series) - m + 1):
            window = tuple(int(s) for s in states[start : start + m - 1])
            if window == tuple(signature):
                hits.append((record.stream_id, start))
    return sorted(hits)


@pytest.fixture
def db():
    database = MotionDatabase()
    database.add_patient("PA")
    database.add_patient("PB")
    database.add_stream("PA", "S00", series=make_series(4))
    database.add_stream("PB", "S00", series=make_series(3, period=4.0))
    return database


class TestIndex:
    def test_matches_brute_force(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        candidates = index.candidates(signature)
        got = sorted(
            zip((str(s) for s in candidates.stream_ids), candidates.starts)
        )
        assert got == brute_force(db, signature)

    def test_unknown_signature_returns_none(self, db):
        index = StateSignatureIndex(db)
        assert index.candidates((int(EX), int(EX), int(EX))) is None

    def test_feature_rows_align(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX))
        candidates = index.candidates(signature)
        for i in range(candidates.n_candidates):
            series = db.stream(str(candidates.stream_ids[i])).series
            start = int(candidates.starts[i])
            np.testing.assert_allclose(
                candidates.amplitudes[i], series.amplitudes[start : start + 2]
            )
            np.testing.assert_allclose(
                candidates.durations[i], series.durations[start : start + 2]
            )

    def test_incremental_growth(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        before = index.candidates(signature).n_candidates
        series = db.stream("PA/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        series.append(Vertex(t + 3.0, (0.0,), IN))
        after = index.candidates(signature).n_candidates
        assert after > before
        assert index.candidates(signature).n_candidates == after  # idempotent

    def test_stream_removal_triggers_rebuild(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        index.candidates(signature)
        db.remove_stream("PB/S00")
        candidates = index.candidates(signature)
        assert all(str(s) != "PB/S00" for s in candidates.stream_ids)
        assert sorted(
            zip((str(s) for s in candidates.stream_ids), candidates.starts)
        ) == brute_force(db, signature)

    def test_new_stream_picked_up(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        before = index.candidates(signature).n_candidates
        db.add_stream("PB", "S01", series=make_series(2))
        after = index.candidates(signature).n_candidates
        assert after > before

    def test_select_mask(self, db):
        index = StateSignatureIndex(db)
        candidates = index.candidates((int(IN), int(EX), int(EOE)))
        mask = np.zeros(candidates.n_candidates, dtype=bool)
        mask[0] = True
        subset = candidates.select(mask)
        assert subset.n_candidates == 1
        assert subset.starts[0] == candidates.starts[0]

    def test_bookkeeping_accessors(self, db):
        index = StateSignatureIndex(db)
        index.candidates((int(IN), int(EX), int(EOE)))
        assert index.indexed_lengths == (4,)
        assert index.n_postings(4) >= 1
        assert index.n_postings(99) == 0
