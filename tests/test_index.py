"""Tests for the state-signature index."""

import math

import numpy as np
import pytest

from repro.core.model import Vertex
from repro.database.index import (
    MAX_RADIX_SEGMENTS,
    StateSignatureIndex,
    decode_signature,
    encode_signature,
)
from repro.database.store import MotionDatabase

from conftest import EOE, EX, IN, make_series


def brute_force(db, signature):
    """All windows matching a signature, by direct scan."""
    m = len(signature) + 1
    hits = []
    for record in db.iter_streams():
        states = record.series.states
        for start in range(len(record.series) - m + 1):
            window = tuple(int(s) for s in states[start : start + m - 1])
            if window == tuple(signature):
                hits.append((record.stream_id, start))
    return sorted(hits)


@pytest.fixture
def db():
    database = MotionDatabase()
    database.add_patient("PA")
    database.add_patient("PB")
    database.add_stream("PA", "S00", series=make_series(4))
    database.add_stream("PB", "S00", series=make_series(3, period=4.0))
    return database


class TestIndex:
    def test_matches_brute_force(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        candidates = index.candidates(signature)
        got = sorted(
            zip((str(s) for s in candidates.stream_ids), candidates.starts)
        )
        assert got == brute_force(db, signature)

    def test_unknown_signature_returns_none(self, db):
        index = StateSignatureIndex(db)
        assert index.candidates((int(EX), int(EX), int(EX))) is None

    def test_feature_rows_align(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX))
        candidates = index.candidates(signature)
        for i in range(candidates.n_candidates):
            series = db.stream(str(candidates.stream_ids[i])).series
            start = int(candidates.starts[i])
            np.testing.assert_allclose(
                candidates.amplitudes[i], series.amplitudes[start : start + 2]
            )
            np.testing.assert_allclose(
                candidates.durations[i], series.durations[start : start + 2]
            )

    def test_incremental_growth(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        before = index.candidates(signature).n_candidates
        series = db.stream("PA/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        series.append(Vertex(t + 3.0, (0.0,), IN))
        after = index.candidates(signature).n_candidates
        assert after > before
        assert index.candidates(signature).n_candidates == after  # idempotent

    def test_stream_removal_triggers_rebuild(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        index.candidates(signature)
        db.remove_stream("PB/S00")
        candidates = index.candidates(signature)
        assert all(str(s) != "PB/S00" for s in candidates.stream_ids)
        assert sorted(
            zip((str(s) for s in candidates.stream_ids), candidates.starts)
        ) == brute_force(db, signature)

    def test_new_stream_picked_up(self, db):
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        before = index.candidates(signature).n_candidates
        db.add_stream("PB", "S01", series=make_series(2))
        after = index.candidates(signature).n_candidates
        assert after > before

    def test_select_mask(self, db):
        index = StateSignatureIndex(db)
        candidates = index.candidates((int(IN), int(EX), int(EOE)))
        mask = np.zeros(candidates.n_candidates, dtype=bool)
        mask[0] = True
        subset = candidates.select(mask)
        assert subset.n_candidates == 1
        assert subset.starts[0] == candidates.starts[0]

    def test_bookkeeping_accessors(self, db):
        index = StateSignatureIndex(db)
        index.candidates((int(IN), int(EX), int(EOE)))
        assert index.indexed_lengths == (4,)
        assert index.n_postings(4) >= 1
        assert index.n_postings(99) == 0
        # Every window of every stream at length 4 is indexed.
        total = sum(
            max(0, len(r.series) - 4 + 1) for r in db.iter_streams()
        )
        assert index.n_windows(4) == total
        assert index.n_windows(99) == 0


def all_candidates(index, signature):
    """(stream_id, start) pairs the index returns, sorted."""
    candidates = index.candidates(signature)
    if candidates is None:
        return []
    return sorted(
        zip((str(s) for s in candidates.stream_ids), candidates.starts)
    )


class TestSignatureEncoding:
    def test_round_trip_radix(self):
        signature = (2, 0, 1, 3, 2, 0)
        key = encode_signature(signature)
        assert isinstance(key, int)
        assert decode_signature(key, len(signature)) == signature

    def test_injective_on_prefix_padding(self):
        # (2,) and (2, 0) must not collide even though 0 * 4 adds nothing:
        # keys are only compared within one window length, but the tuple
        # round-trip must still be exact.
        assert decode_signature(encode_signature((2, 0)), 2) == (2, 0)
        assert decode_signature(encode_signature((2,)), 1) == (2,)

    def test_round_trip_bytes_fallback(self):
        signature = tuple(i % 4 for i in range(MAX_RADIX_SEGMENTS + 5))
        key = encode_signature(signature)
        assert isinstance(key, bytes)
        assert decode_signature(key, len(signature)) == signature

    def test_ndarray_and_tuple_agree(self):
        signature = (1, 2, 0, 2)
        assert encode_signature(
            np.asarray(signature, dtype=np.int8)
        ) == encode_signature(signature)


class TestIncrementality:
    def test_catch_up_indexes_exactly_new_windows(self, db):
        """Appending after a lookup indexes the new windows — no
        duplicates, no gaps."""
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        assert all_candidates(index, signature) == brute_force(db, signature)
        series = db.stream("PA/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        series.append(Vertex(t + 3.0, (0.0,), IN))
        series.append(Vertex(t + 4.0, (10.0,), EX))
        got = all_candidates(index, signature)
        assert got == brute_force(db, signature)
        assert len(got) == len(set(got))  # no duplicates
        # Idempotent: a second catch-up adds nothing.
        assert all_candidates(index, signature) == got

    def test_catch_up_after_removal_rebuild(self, db):
        """The stream-removal rebuild path re-indexes survivors exactly,
        and stays incremental afterwards."""
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        index.candidates(signature)
        db.remove_stream("PB/S00")
        assert all_candidates(index, signature) == brute_force(db, signature)
        series = db.stream("PA/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        series.append(Vertex(t + 3.0, (0.0,), IN))
        got = all_candidates(index, signature)
        assert got == brute_force(db, signature)
        assert len(got) == len(set(got))

    def test_removal_of_unindexed_stream_keeps_index(self, db):
        """Removing a stream no length index touched must not rebuild."""
        db.add_stream("PB", "S01", series=make_series(2))
        index = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE), int(IN), int(EX))
        # Only streams long enough for 6 vertices are registered; the
        # 2-cycle stream (7 vertices) is — use a fresh one-cycle stream.
        db.add_stream("PB", "S02", series=make_series(1))
        index.candidates(signature)
        db.remove_stream("PB/S02")  # 4 vertices: never indexed at length 6
        assert all_candidates(index, signature) == brute_force(db, signature)

    def test_multiple_lengths_stay_consistent(self, db):
        index = StateSignatureIndex(db)
        short = (int(IN), int(EX))
        long = (int(IN), int(EX), int(EOE), int(IN))
        assert all_candidates(index, short) == brute_force(db, short)
        assert all_candidates(index, long) == brute_force(db, long)
        series = db.stream("PB/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        assert all_candidates(index, short) == brute_force(db, short)
        assert all_candidates(index, long) == brute_force(db, long)

    def test_long_signature_bytes_path(self):
        """Signatures beyond the radix range use byte keys end to end."""
        db = MotionDatabase()
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(cycles=14))
        index = StateSignatureIndex(db)
        n_segments = MAX_RADIX_SEGMENTS + 2
        series = db.stream("PA/S00").series
        signature = tuple(int(s) for s in series.states[:n_segments])
        got = all_candidates(index, signature)
        assert got == brute_force(db, signature)
        assert got  # the pattern repeats, so there are hits


class TestBufferRoundTrip:
    """Exported posting buffers survive ``save -> mmap -> restore`` with
    zero re-indexing (the snapshot storage contract)."""

    ARRAY_FIELDS = (
        "group_keys", "group_offsets", "stream_codes",
        "starts", "amplitudes", "durations",
    )

    def _mmap_round_trip(self, buffers, tmp_path):
        """Persist each exported array and hand back mmap'd views —
        exactly what ``LoggedBackend`` does inside a snapshot segment."""
        loaded = {}
        for n_vertices, state in buffers.items():
            entry = {
                "stream_names": list(state["stream_names"]),
                "next_start": dict(state["next_start"]),
            }
            for field in self.ARRAY_FIELDS:
                path = tmp_path / f"idx-{n_vertices}-{field}.npy"
                np.save(path, state[field])
                entry[field] = np.load(path, mmap_mode="r")
            loaded[n_vertices] = entry
        return loaded

    def _signatures(self, db, m):
        """Every distinct length-``m`` window signature in the database."""
        seen = set()
        for record in db.iter_streams():
            states = record.series.states
            for start in range(len(record.series) - m + 1):
                seen.add(tuple(int(s) for s in states[start : start + m - 1]))
        return sorted(seen)

    def test_restored_index_answers_without_rebuild(self, db, tmp_path):
        from repro.obs import Telemetry

        original = StateSignatureIndex(db)
        lengths = (3, 4, 5)
        for m in lengths:  # materialise several length indexes
            for signature in self._signatures(db, m):
                original.candidates(signature)

        buffers = self._mmap_round_trip(original.export_buffers(), tmp_path)

        telemetry = Telemetry()
        restored = StateSignatureIndex(db, telemetry=telemetry)
        assert restored.restore_buffers(buffers) == len(lengths)
        for m in lengths:
            for signature in self._signatures(db, m):
                assert all_candidates(restored, signature) == all_candidates(
                    original, signature
                )
        # The watermarks covered every window: nothing was re-indexed.
        windows = telemetry.registry.counter("index.windows_indexed")
        assert windows.value == 0

    def test_restored_index_passes_oracle_sweep(self, db, tmp_path):
        from repro.core.matching import SubsequenceMatcher
        from repro.core.similarity import SimilarityParams
        from repro.testing.oracle import check_equivalence, reference_matches

        original = StateSignatureIndex(db)
        for m in (3, 4):
            for signature in self._signatures(db, m):
                original.candidates(signature)
        buffers = self._mmap_round_trip(original.export_buffers(), tmp_path)

        restored = StateSignatureIndex(db)
        restored.restore_buffers(buffers)
        params = SimilarityParams()
        matcher = SubsequenceMatcher(db, params, index=restored)
        query_stream = db.stream_ids[0]
        series = db.stream(query_stream).series
        for m in (3, 4):
            for start in range(0, len(series) - m, 3):
                query = series.subsequence(start, start + m)
                engine = matcher.find_matches(
                    query, query_stream, threshold=math.inf
                )
                oracle = reference_matches(
                    db, query, query_stream,
                    threshold=math.inf, params=params,
                )
                check_equivalence(engine, oracle)

    def test_appends_after_restore_migrate_off_the_mmap(self, db, tmp_path):
        """Adopted buffers are read-only views; the first append past the
        watermark must copy the posting into writable storage."""
        original = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        original.candidates(signature)
        buffers = self._mmap_round_trip(original.export_buffers(), tmp_path)

        restored = StateSignatureIndex(db)
        restored.restore_buffers(buffers)
        before = all_candidates(restored, signature)
        series = db.stream("PA/S00").series
        t = series.end_time
        series.append(Vertex(t + 1.0, (10.0,), EX))
        series.append(Vertex(t + 2.0, (0.0,), EOE))
        series.append(Vertex(t + 3.0, (0.0,), IN))
        after = all_candidates(restored, signature)
        assert after == brute_force(db, signature)
        assert len(after) > len(before)

    def test_restore_skips_lengths_with_removed_streams(self, db, tmp_path):
        original = StateSignatureIndex(db)
        signature = (int(IN), int(EX), int(EOE))
        original.candidates(signature)
        buffers = self._mmap_round_trip(original.export_buffers(), tmp_path)

        db.remove_stream("PB/S00")
        restored = StateSignatureIndex(db)
        assert restored.restore_buffers(buffers) == 0
        # The skipped length rebuilds lazily and stays correct.
        assert all_candidates(restored, signature) == brute_force(db, signature)

    def test_bytes_keyed_lengths_are_not_exported(self):
        db = MotionDatabase()
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(cycles=14))
        index = StateSignatureIndex(db)
        n_segments = MAX_RADIX_SEGMENTS + 2
        series = db.stream("PA/S00").series
        signature = tuple(int(s) for s in series.states[:n_segments])
        index.candidates(signature)
        assert index.export_buffers() == {}
