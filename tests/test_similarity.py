"""Tests for Definition 2 (the weighted subsequence distance)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PLRSeries, Vertex
from repro.core.similarity import (
    SimilarityParams,
    SourceRelation,
    batch_distance,
    subsequence_distance,
    vertex_weights,
)

from conftest import EOE, EX, IN


def shifted_series(amplitude=10.0, period=3.0, baseline=0.0, dur_scale=1.0):
    series = PLRSeries()
    t = 0.0
    third = period / 3.0 * dur_scale
    for _ in range(4):
        series.append(Vertex(t, (baseline,), IN))
        series.append(Vertex(t + third, (baseline + amplitude,), EX))
        series.append(Vertex(t + 2 * third, (baseline,), EOE))
        t += 3 * third
    series.append(Vertex(t, (baseline,), IN))
    return series


class TestVertexWeights:
    def test_ramp_endpoints(self):
        w = vertex_weights(5, 0.5)
        assert w[0] == pytest.approx(0.5)
        assert w[-1] == pytest.approx(1.0)
        assert np.all(np.diff(w) > 0)

    def test_single_segment(self):
        np.testing.assert_allclose(vertex_weights(1, 0.5), [1.0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            vertex_weights(0, 0.5)


class TestSubsequenceDistance:
    def test_identity_is_zero(self, regular_series):
        sub = regular_series.subsequence(0, 7)
        assert subsequence_distance(sub, sub) == pytest.approx(0.0)

    def test_signature_mismatch_is_inf(self, regular_series):
        a = regular_series.subsequence(0, 7)
        b = regular_series.subsequence(1, 8)
        assert math.isinf(subsequence_distance(a, b))

    def test_offset_translation_invariant(self):
        a = shifted_series(baseline=0.0).subsequence(0, 7)
        b = shifted_series(baseline=25.0).subsequence(0, 7)
        assert subsequence_distance(a, b) == pytest.approx(0.0)

    def test_symmetry_same_relation(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=13.0).subsequence(0, 7)
        params = SimilarityParams()
        d_ab = subsequence_distance(a, b, params, SourceRelation.SAME_PATIENT)
        d_ba = subsequence_distance(b, a, params, SourceRelation.SAME_PATIENT)
        assert d_ab == pytest.approx(d_ba)

    def test_amplitude_difference_scales(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        c = shifted_series(amplitude=14.0).subsequence(0, 7)
        params = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False)
        assert subsequence_distance(a, c, params) == pytest.approx(
            2.0 * subsequence_distance(a, b, params)
        )

    def test_frequency_weight_governs_duration_cost(self):
        a = shifted_series(dur_scale=1.0).subsequence(0, 7)
        b = shifted_series(dur_scale=1.3).subsequence(0, 7)
        low = SimilarityParams(frequency_weight=0.25,
                               use_vertex_weights=False,
                               use_source_weights=False)
        high = SimilarityParams(frequency_weight=1.0,
                                use_vertex_weights=False,
                                use_source_weights=False)
        assert subsequence_distance(a, b, high) == pytest.approx(
            4.0 * subsequence_distance(a, b, low)
        )

    def test_source_weight_divides(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        params = SimilarityParams(use_vertex_weights=False)
        same = subsequence_distance(a, b, params, SourceRelation.SAME_SESSION)
        other = subsequence_distance(a, b, params, SourceRelation.OTHER_PATIENT)
        assert other == pytest.approx(same / 0.3)

    def test_source_weight_multiplicative_ablation(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        params = SimilarityParams(
            use_vertex_weights=False, source_weight_multiplies=True
        )
        same = subsequence_distance(a, b, params, SourceRelation.SAME_SESSION)
        other = subsequence_distance(a, b, params, SourceRelation.OTHER_PATIENT)
        assert other == pytest.approx(same * 0.3)

    def test_normalized_inner_sum_is_mean(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        summed = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False)
        meaned = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False,
                                  normalize_inner_sum=True)
        assert subsequence_distance(a, b, summed) == pytest.approx(
            a.n_segments * subsequence_distance(a, b, meaned)
        )

    def test_vertex_weights_emphasise_recent(self):
        # Build candidates differing only in the oldest vs newest segment.
        base = shifted_series(amplitude=10.0)
        peaks = [i for i, v in enumerate(base) if v.state == EX]
        first_peak, last_peak = peaks[0], peaks[-1]
        old_diff = PLRSeries()
        new_diff = PLRSeries()
        for i, v in enumerate(base):
            old_pos = (14.0,) if i == first_peak else v.position
            new_pos = (14.0,) if i == last_peak else v.position
            old_diff.append(Vertex(v.time, old_pos, v.state))
            new_diff.append(Vertex(v.time, new_pos, v.state))
        params = SimilarityParams(use_source_weights=False)
        query = base.subsequence(0, len(base))
        d_old = subsequence_distance(
            query, old_diff.subsequence(0, len(old_diff)), params
        )
        d_new = subsequence_distance(
            query, new_diff.subsequence(0, len(new_diff)), params
        )
        assert d_old < d_new  # recent mismatch costs more

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SimilarityParams(vertex_base_weight=0.0)
        with pytest.raises(ValueError):
            SimilarityParams(weight_other_patient=1.5)
        with pytest.raises(ValueError):
            SimilarityParams(distance_threshold=0.0)
        with pytest.raises(ValueError):
            SimilarityParams(amplitude_weight=-1.0)

    def test_offline_and_unweighted_helpers(self):
        params = SimilarityParams()
        assert params.offline().use_vertex_weights is False
        unweighted = params.unweighted()
        assert unweighted.frequency_weight == 1.0
        assert unweighted.use_source_weights is False


class TestBatchDistance:
    def test_matches_pairwise(self):
        query = shifted_series(amplitude=10.0).subsequence(0, 7)
        candidates = [
            shifted_series(amplitude=a, dur_scale=d).subsequence(0, 7)
            for a, d in ((10.0, 1.0), (12.0, 1.1), (8.0, 0.9))
        ]
        params = SimilarityParams()
        relations = [
            SourceRelation.SAME_SESSION,
            SourceRelation.SAME_PATIENT,
            SourceRelation.OTHER_PATIENT,
        ]
        amp = np.vstack([c.amplitudes for c in candidates])
        dur = np.vstack([c.durations for c in candidates])
        ws = np.array([params.source_weight(r) for r in relations])
        batched = batch_distance(query, amp, dur, ws, params)
        pairwise = [
            subsequence_distance(query, c, params, r)
            for c, r in zip(candidates, relations)
        ]
        np.testing.assert_allclose(batched, pairwise)


@settings(max_examples=40, deadline=None)
@given(
    amp=st.floats(min_value=1.0, max_value=30.0),
    dur=st.floats(min_value=0.5, max_value=2.0),
)
def test_property_distance_nonnegative_and_identity(amp, dur):
    a = shifted_series(amplitude=amp, dur_scale=dur).subsequence(0, 7)
    b = shifted_series(amplitude=amp + 1.0, dur_scale=dur).subsequence(0, 7)
    params = SimilarityParams()
    assert subsequence_distance(a, a, params) == pytest.approx(0.0)
    assert subsequence_distance(a, b, params) >= 0.0


class TestVertexWeightCache:
    def test_returns_shared_readonly_array(self):
        a = vertex_weights(7, 0.5)
        b = vertex_weights(7, 0.5)
        assert a is b  # memoised
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 2.0

    def test_distinct_parameters_distinct_arrays(self):
        assert vertex_weights(7, 0.5) is not vertex_weights(7, 0.25)
        assert vertex_weights(7, 0.5) is not vertex_weights(8, 0.5)

    def test_base_one_is_all_ones(self):
        np.testing.assert_allclose(vertex_weights(5, 1.0), np.ones(5))


def _series_from_features(amplitudes, durations):
    """A 1-D series whose per-segment |dA| / dT match the given features.

    Positions alternate direction so each segment's displacement norm is
    exactly the requested amplitude; states repeat the regular cycle so
    any two series of the same length share a signature.
    """
    cycle = (IN, EX, EOE)
    series = PLRSeries()
    t, p = 0.0, 0.0
    series.append(Vertex(t, (p,), cycle[0]))
    for i, (a, d) in enumerate(zip(amplitudes, durations)):
        t += d
        p += a if i % 2 == 0 else -a
        series.append(Vertex(t, (p,), cycle[(i + 1) % 3]))
    return series


@settings(max_examples=60, deadline=None)
@given(
    n_segments=st.integers(min_value=1, max_value=9),
    data=st.data(),
    use_vertex_weights=st.booleans(),
    use_source_weights=st.booleans(),
    source_weight_multiplies=st.booleans(),
    normalize_inner_sum=st.booleans(),
    vertex_base_weight=st.floats(min_value=0.1, max_value=1.0),
)
def test_property_batch_equals_pairwise(
    n_segments,
    data,
    use_vertex_weights,
    use_source_weights,
    source_weight_multiplies,
    normalize_inner_sum,
    vertex_base_weight,
):
    """``batch_distance`` is elementwise ``subsequence_distance``, for any
    parameter combination — including the single-segment edge case."""
    feature = st.floats(min_value=0.1, max_value=20.0)
    features = st.lists(
        feature, min_size=n_segments, max_size=n_segments
    )
    params = SimilarityParams(
        use_vertex_weights=use_vertex_weights,
        use_source_weights=use_source_weights,
        source_weight_multiplies=source_weight_multiplies,
        normalize_inner_sum=normalize_inner_sum,
        vertex_base_weight=vertex_base_weight,
    )
    query = _series_from_features(
        data.draw(features), data.draw(features)
    ).subsequence(0, n_segments + 1)
    relations = (
        SourceRelation.SAME_SESSION,
        SourceRelation.SAME_PATIENT,
        SourceRelation.OTHER_PATIENT,
    )
    candidates = [
        _series_from_features(
            data.draw(features), data.draw(features)
        ).subsequence(0, n_segments + 1)
        for _ in relations
    ]
    batched = batch_distance(
        query,
        np.vstack([c.amplitudes for c in candidates]),
        np.vstack([c.durations for c in candidates]),
        np.array([params.source_weight(r) for r in relations]),
        params,
    )
    pairwise = [
        subsequence_distance(query, c, params, r)
        for c, r in zip(candidates, relations)
    ]
    np.testing.assert_allclose(batched, pairwise, rtol=1e-12, atol=1e-12)
