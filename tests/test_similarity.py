"""Tests for Definition 2 (the weighted subsequence distance)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PLRSeries, Vertex
from repro.core.similarity import (
    SimilarityParams,
    SourceRelation,
    batch_distance,
    subsequence_distance,
    vertex_weights,
)

from conftest import EOE, EX, IN


def shifted_series(amplitude=10.0, period=3.0, baseline=0.0, dur_scale=1.0):
    series = PLRSeries()
    t = 0.0
    third = period / 3.0 * dur_scale
    for _ in range(4):
        series.append(Vertex(t, (baseline,), IN))
        series.append(Vertex(t + third, (baseline + amplitude,), EX))
        series.append(Vertex(t + 2 * third, (baseline,), EOE))
        t += 3 * third
    series.append(Vertex(t, (baseline,), IN))
    return series


class TestVertexWeights:
    def test_ramp_endpoints(self):
        w = vertex_weights(5, 0.5)
        assert w[0] == pytest.approx(0.5)
        assert w[-1] == pytest.approx(1.0)
        assert np.all(np.diff(w) > 0)

    def test_single_segment(self):
        np.testing.assert_allclose(vertex_weights(1, 0.5), [1.0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            vertex_weights(0, 0.5)


class TestSubsequenceDistance:
    def test_identity_is_zero(self, regular_series):
        sub = regular_series.subsequence(0, 7)
        assert subsequence_distance(sub, sub) == pytest.approx(0.0)

    def test_signature_mismatch_is_inf(self, regular_series):
        a = regular_series.subsequence(0, 7)
        b = regular_series.subsequence(1, 8)
        assert math.isinf(subsequence_distance(a, b))

    def test_offset_translation_invariant(self):
        a = shifted_series(baseline=0.0).subsequence(0, 7)
        b = shifted_series(baseline=25.0).subsequence(0, 7)
        assert subsequence_distance(a, b) == pytest.approx(0.0)

    def test_symmetry_same_relation(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=13.0).subsequence(0, 7)
        params = SimilarityParams()
        d_ab = subsequence_distance(a, b, params, SourceRelation.SAME_PATIENT)
        d_ba = subsequence_distance(b, a, params, SourceRelation.SAME_PATIENT)
        assert d_ab == pytest.approx(d_ba)

    def test_amplitude_difference_scales(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        c = shifted_series(amplitude=14.0).subsequence(0, 7)
        params = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False)
        assert subsequence_distance(a, c, params) == pytest.approx(
            2.0 * subsequence_distance(a, b, params)
        )

    def test_frequency_weight_governs_duration_cost(self):
        a = shifted_series(dur_scale=1.0).subsequence(0, 7)
        b = shifted_series(dur_scale=1.3).subsequence(0, 7)
        low = SimilarityParams(frequency_weight=0.25,
                               use_vertex_weights=False,
                               use_source_weights=False)
        high = SimilarityParams(frequency_weight=1.0,
                                use_vertex_weights=False,
                                use_source_weights=False)
        assert subsequence_distance(a, b, high) == pytest.approx(
            4.0 * subsequence_distance(a, b, low)
        )

    def test_source_weight_divides(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        params = SimilarityParams(use_vertex_weights=False)
        same = subsequence_distance(a, b, params, SourceRelation.SAME_SESSION)
        other = subsequence_distance(a, b, params, SourceRelation.OTHER_PATIENT)
        assert other == pytest.approx(same / 0.3)

    def test_source_weight_multiplicative_ablation(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        params = SimilarityParams(
            use_vertex_weights=False, source_weight_multiplies=True
        )
        same = subsequence_distance(a, b, params, SourceRelation.SAME_SESSION)
        other = subsequence_distance(a, b, params, SourceRelation.OTHER_PATIENT)
        assert other == pytest.approx(same * 0.3)

    def test_normalized_inner_sum_is_mean(self):
        a = shifted_series(amplitude=10.0).subsequence(0, 7)
        b = shifted_series(amplitude=12.0).subsequence(0, 7)
        summed = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False)
        meaned = SimilarityParams(use_vertex_weights=False,
                                  use_source_weights=False,
                                  normalize_inner_sum=True)
        assert subsequence_distance(a, b, summed) == pytest.approx(
            a.n_segments * subsequence_distance(a, b, meaned)
        )

    def test_vertex_weights_emphasise_recent(self):
        # Build candidates differing only in the oldest vs newest segment.
        base = shifted_series(amplitude=10.0)
        peaks = [i for i, v in enumerate(base) if v.state == EX]
        first_peak, last_peak = peaks[0], peaks[-1]
        old_diff = PLRSeries()
        new_diff = PLRSeries()
        for i, v in enumerate(base):
            old_pos = (14.0,) if i == first_peak else v.position
            new_pos = (14.0,) if i == last_peak else v.position
            old_diff.append(Vertex(v.time, old_pos, v.state))
            new_diff.append(Vertex(v.time, new_pos, v.state))
        params = SimilarityParams(use_source_weights=False)
        query = base.subsequence(0, len(base))
        d_old = subsequence_distance(
            query, old_diff.subsequence(0, len(old_diff)), params
        )
        d_new = subsequence_distance(
            query, new_diff.subsequence(0, len(new_diff)), params
        )
        assert d_old < d_new  # recent mismatch costs more

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SimilarityParams(vertex_base_weight=0.0)
        with pytest.raises(ValueError):
            SimilarityParams(weight_other_patient=1.5)
        with pytest.raises(ValueError):
            SimilarityParams(distance_threshold=0.0)
        with pytest.raises(ValueError):
            SimilarityParams(amplitude_weight=-1.0)

    def test_offline_and_unweighted_helpers(self):
        params = SimilarityParams()
        assert params.offline().use_vertex_weights is False
        unweighted = params.unweighted()
        assert unweighted.frequency_weight == 1.0
        assert unweighted.use_source_weights is False


class TestBatchDistance:
    def test_matches_pairwise(self):
        query = shifted_series(amplitude=10.0).subsequence(0, 7)
        candidates = [
            shifted_series(amplitude=a, dur_scale=d).subsequence(0, 7)
            for a, d in ((10.0, 1.0), (12.0, 1.1), (8.0, 0.9))
        ]
        params = SimilarityParams()
        relations = [
            SourceRelation.SAME_SESSION,
            SourceRelation.SAME_PATIENT,
            SourceRelation.OTHER_PATIENT,
        ]
        amp = np.vstack([c.amplitudes for c in candidates])
        dur = np.vstack([c.durations for c in candidates])
        ws = np.array([params.source_weight(r) for r in relations])
        batched = batch_distance(query, amp, dur, ws, params)
        pairwise = [
            subsequence_distance(query, c, params, r)
            for c, r in zip(candidates, relations)
        ]
        np.testing.assert_allclose(batched, pairwise)


@settings(max_examples=40, deadline=None)
@given(
    amp=st.floats(min_value=1.0, max_value=30.0),
    dur=st.floats(min_value=0.5, max_value=2.0),
)
def test_property_distance_nonnegative_and_identity(amp, dur):
    a = shifted_series(amplitude=amp, dur_scale=dur).subsequence(0, 7)
    b = shifted_series(amplitude=amp + 1.0, dur_scale=dur).subsequence(0, 7)
    params = SimilarityParams()
    assert subsequence_distance(a, a, params) == pytest.approx(0.0)
    assert subsequence_distance(a, b, params) >= 0.0
