"""Shared fixtures: tiny deterministic series, streams and cohorts.

The suite runs against a storage backend chosen by the
``REPRO_TEST_BACKEND`` environment variable (``in_memory`` by default,
``logged`` in the durable CI leg) — tests that construct databases
through :func:`make_database` / the ``make_database`` fixture exercise
whichever backend is under test.
"""

from __future__ import annotations

import itertools
import os
import tempfile

import numpy as np
import pytest

from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.database.backend import create_backend
from repro.database.store import MotionDatabase
from repro.signals.patients import generate_population
from repro.signals.respiratory import RespiratorySimulator, SessionConfig

EX = BreathingState.EX
EOE = BreathingState.EOE
IN = BreathingState.IN
IRR = BreathingState.IRR

#: The storage backend the suite runs against (CI matrixes over these).
TEST_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "in_memory")

_db_counter = itertools.count()


def make_test_database() -> MotionDatabase:
    """A fresh database over the backend under test.

    For the logged backend each database gets its own temporary
    directory, cleaned up when the interpreter exits (hypothesis-driven
    tests cannot use function-scoped ``tmp_path``).
    """
    directory = None
    if TEST_BACKEND == "logged":
        tmp = tempfile.TemporaryDirectory(
            prefix=f"repro-db-{next(_db_counter)}-"
        )
        db = MotionDatabase(backend=create_backend(TEST_BACKEND, tmp.name))
        db._test_tmpdir = tmp  # tie the directory's lifetime to the db
        return db
    return MotionDatabase(backend=create_backend(TEST_BACKEND, directory))


@pytest.fixture
def make_database():
    """Factory fixture: fresh databases over the backend under test."""
    return make_test_database


def make_series(cycles: int = 4, amplitude: float = 10.0,
                period: float = 3.0, start: float = 0.0,
                baseline: float = 0.0) -> PLRSeries:
    """A hand-built perfectly regular PLR: IN, EX, EOE per cycle.

    Segment pattern per cycle (durations period/3 each): rise to
    ``baseline + amplitude``, fall back, rest.
    """
    series = PLRSeries()
    t = start
    third = period / 3.0
    for _ in range(cycles):
        series.append(Vertex(t, (baseline,), IN))
        series.append(Vertex(t + third, (baseline + amplitude,), EX))
        series.append(Vertex(t + 2 * third, (baseline,), EOE))
        t += period
    series.append(Vertex(t, (baseline,), IN))
    return series


@pytest.fixture
def regular_series() -> PLRSeries:
    """Four perfectly regular cycles."""
    return make_series()


@pytest.fixture
def raw_stream():
    """One deterministic synthetic raw session (60 s, 30 Hz)."""
    profile = generate_population(1, seed=7)[0]
    simulator = RespiratorySimulator(profile, SessionConfig(duration=60.0))
    return simulator.generate_session(0, seed=11)


@pytest.fixture(scope="session")
def small_population():
    """Three reproducible patient profiles."""
    return generate_population(3, seed=5)


@pytest.fixture(scope="session")
def small_cohort():
    """A small built cohort shared across integration tests."""
    from repro.analysis.experiments import CohortConfig, build_cohort

    return build_cohort(
        CohortConfig(
            n_patients=4,
            sessions_per_patient=2,
            session_duration=60.0,
            live_duration=40.0,
            seed=3,
        )
    )


def assert_monotone_times(series: PLRSeries) -> None:
    """All vertex times strictly increasing."""
    times = series.times
    assert np.all(np.diff(times) > 0)
