"""Tests for streaming ingestion into the database."""

import numpy as np
import pytest

from repro.database.ingest import StreamIngestor
from repro.database.store import MotionDatabase

from tests_support import clean_cycles


@pytest.fixture
def db():
    database = MotionDatabase()
    database.add_patient("PA")
    return database


class TestStreamIngestor:
    def test_series_shared_with_record(self, db):
        ingestor = StreamIngestor(db, "PA", "S00")
        assert ingestor.series is db.stream(ingestor.stream_id).series

    def test_vertices_visible_immediately(self, db):
        ingestor = StreamIngestor(db, "PA", "S00")
        t, x = clean_cycles(n_cycles=3)
        committed = ingestor.extend(t, x)
        assert committed
        assert db.stream("PA/S00").n_vertices == len(committed)

    def test_finish_closes(self, db):
        ingestor = StreamIngestor(db, "PA", "S00")
        t, x = clean_cycles(n_cycles=3)
        ingestor.extend(t, x)
        n = db.stream("PA/S00").n_vertices
        assert len(ingestor.finish()) == 1
        assert db.stream("PA/S00").n_vertices == n + 1

    def test_unknown_patient_rejected(self, db):
        with pytest.raises(KeyError):
            StreamIngestor(db, "ZZ", "S00")

    def test_metadata_stored(self, db):
        ingestor = StreamIngestor(db, "PA", "S00", metadata={"note": "x"})
        assert db.stream(ingestor.stream_id).metadata == {"note": "x"}

    def test_incremental_matches_batch(self, db):
        t, x = clean_cycles(n_cycles=4)
        a = StreamIngestor(db, "PA", "A")
        for ti, xi in zip(t, x):
            a.add_point(float(ti), float(xi))
        a.finish()
        b = StreamIngestor(db, "PA", "B")
        b.extend(t, x)
        b.finish()
        np.testing.assert_allclose(a.series.times, b.series.times)
        np.testing.assert_array_equal(a.series.states, b.series.states)
