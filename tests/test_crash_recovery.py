"""Crash-recovery chaos campaigns (see docs/TESTING.md).

The quick variant runs in tier-1 on every push: a capped campaign that
still kills the session at real log/index injection points.  The full
three-seed sweep over every injection point is marked ``chaos`` and runs
in the dedicated CI job (or locally via ``pytest -m chaos``).
"""

import pytest

from repro.testing import ChaosConfig, run_crash_recovery

#: The CI seeds: 2 drives the longest log, 3 exercises amendments.
CHAOS_SEEDS = (0, 2, 3)


class TestQuickCampaign:
    def test_capped_campaign_recovers_everywhere(self, tmp_path):
        config = ChaosConfig(
            seed=0,
            duration=18.0,
            history_duration=30.0,
            max_log_points=6,
            max_index_points=4,
            max_compaction_points=3,
            n_sample_faults=4,
        )
        report = run_crash_recovery(config, workdir=tmp_path)
        assert report.n_log_points == 6
        # 6 log recoveries + 2 per compaction point (crash + recompact)
        # + 3 across the two torn-manifest scenarios + 1 sharded
        # worker-crash recovery.
        assert report.n_byte_identical_recoveries == 16
        assert report.n_index_points == 4
        assert report.n_removal_points == 1
        assert report.n_compaction_points == 3
        assert report.n_torn_manifest_points == 2
        assert report.n_worker_crash_points == 1
        # 2 non-rigid modes x 2 log-crash points each.
        assert report.n_match_mode_points == 4
        assert report.n_sample_faults == 4
        assert report.n_oracle_checks > 0


@pytest.mark.chaos
@pytest.mark.slow
class TestFullCampaign:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_every_injection_point(self, seed, tmp_path):
        report = run_crash_recovery(
            ChaosConfig(seed=seed), workdir=tmp_path
        )
        # Every vertex-log write was killed and recovered byte-identically,
        # plus two verifications per compaction crash point (crash +
        # recompact), three across the torn-manifest scenarios and one
        # sharded worker-crash recovery.
        assert report.n_byte_identical_recoveries == (
            report.n_log_points + 2 * report.n_compaction_points + 4
        )
        assert report.n_log_points > 0
        assert report.n_index_points > 0
        assert report.n_removal_points == 1
        assert report.n_compaction_points > 0
        assert report.n_torn_manifest_points == 2
        assert report.n_worker_crash_points == 1
        assert report.n_match_mode_points == 4
        assert report.n_sample_faults > 0
        assert report.n_oracle_checks > 0

    def test_amend_path_is_exercised(self, tmp_path):
        """At least one campaign seed must crash inside ``log.amend`` —
        otherwise the amendment recovery contract is untested."""
        report = run_crash_recovery(
            ChaosConfig(seed=3), workdir=tmp_path
        )
        assert any(site.startswith("log.amend#") for site in report.sites)


@pytest.mark.chaos
class TestMatchModeCampaign:
    """The dedicated match-mode seed: crash/replay under ``normalized``
    and ``warped`` retrieval, with the other scenarios capped to a token
    presence (they have their own seeds above)."""

    def test_mode_crash_replay_points(self, tmp_path):
        config = ChaosConfig(
            seed=21,
            duration=18.0,
            history_duration=30.0,
            max_log_points=1,
            max_index_points=1,
            max_compaction_points=1,
            n_sample_faults=2,
            worker_crash=False,
        )
        report = run_crash_recovery(config, workdir=tmp_path)
        assert report.n_match_mode_points == 4
        mode_sites = [site for site in report.sites if site.count(":") == 2]
        assert {site.rsplit(":", 1)[1] for site in mode_sites} == {
            "normalized",
            "warped",
        }


@pytest.mark.chaos
class TestCompactionCampaign:
    """The dedicated compaction seed: every fault point inside
    ``LoggedBackend.compact``, uncapped, plus both torn-snapshot-manifest
    fallbacks.  Log/index points are capped to a token presence — they
    have their own seeds above."""

    def test_every_compaction_fault_point(self, tmp_path):
        config = ChaosConfig(
            seed=11,
            duration=18.0,
            history_duration=30.0,
            max_log_points=1,
            max_index_points=1,
            n_sample_faults=2,
        )
        report = run_crash_recovery(config, workdir=tmp_path)
        compact_sites = {
            site.split("#")[0]
            for site in report.sites
            if site.startswith("compact.")
        }
        assert compact_sites == {
            "compact.columns",
            "compact.index",
            "compact.snapshot_manifest",
            "compact.rotate",
            "compact.commit",
            "compact.cleanup",
        }
        # rotate fires per stream: strictly more points than sites.
        assert report.n_compaction_points > len(compact_sites)
        assert report.n_torn_manifest_points == 2
        assert any("torn_manifest(gen2)" in site for site in report.sites)
        assert any("torn_manifest(gen1)" in site for site in report.sites)
