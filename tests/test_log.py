"""Tests for the append-only vertex log and its crash tolerance."""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import BreathingState, Vertex
from repro.database.ingest import StreamIngestor
from repro.database.log import VertexLogWriter, read_vertex_log
from repro.database.store import MotionDatabase
from repro.testing.faults import FaultInjector, FaultPlan, SimulatedCrash

from conftest import make_series
from tests_support import clean_cycles


class TestVertexLog:
    def test_roundtrip(self, tmp_path):
        series = make_series(cycles=3)
        path = tmp_path / "session.jsonl"
        with VertexLogWriter(path, "PA/S00", "PA") as log:
            log.extend(series)
        recovered = read_vertex_log(path)
        assert recovered.header["stream_id"] == "PA/S00"
        assert recovered.header["patient_id"] == "PA"
        assert not recovered.truncated
        np.testing.assert_allclose(recovered.series.times, series.times)
        np.testing.assert_array_equal(recovered.series.states, series.states)

    def test_torn_final_line_tolerated(self, tmp_path):
        series = make_series(cycles=2)
        path = tmp_path / "torn.jsonl"
        with VertexLogWriter(path) as log:
            log.extend(series)
        with path.open("a") as handle:
            handle.write('{"t": 99.0, "p": [1.0')  # crash mid-write
        recovered = read_vertex_log(path)
        assert len(recovered.series) == len(series)
        assert recovered.truncated

    def test_torn_at_every_byte_offset(self, tmp_path):
        """Byte-level regression: whatever prefix of the log survives a
        crash, replay recovers exactly the complete records before the
        tear and flags the torn tail."""
        series = make_series(cycles=2)
        path = tmp_path / "full.jsonl"
        with VertexLogWriter(path, "PA/S00", "PA") as log:
            log.extend(series)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        header_end = len(lines[0])
        record_ends = list(np.cumsum([len(line) for line in lines]))[1:]
        # A record survives once its closing brace is on disk: at
        # end - 1 only the newline is missing and the JSON still parses.
        clean_cuts = {header_end}
        for end in record_ends:
            clean_cuts.update((end - 1, end))
        torn = tmp_path / "cut.jsonl"
        for cut in range(header_end, len(raw) + 1):
            torn.write_bytes(raw[:cut])
            recovered = read_vertex_log(torn)
            n_complete = sum(1 for end in record_ends if cut >= end - 1)
            assert len(recovered.series) == n_complete, f"cut at byte {cut}"
            assert recovered.truncated == (cut not in clean_cuts)
            np.testing.assert_allclose(
                recovered.series.times, series.times[:n_complete]
            )

    def test_amend_roundtrip(self, tmp_path):
        series = make_series(cycles=2)
        path = tmp_path / "amended.jsonl"
        with VertexLogWriter(path) as log:
            log.extend(series)
            relabel = Vertex(
                series[-1].time, series[-1].position, BreathingState.IRR
            )
            log.amend(relabel)
        assert log.n_written == len(series)
        assert log.n_amended == 1
        recovered = read_vertex_log(path)
        assert len(recovered.series) == len(series)
        assert recovered.series[-1].state is BreathingState.IRR
        np.testing.assert_allclose(recovered.series.times, series.times)

    def test_write_after_close_rejected(self, tmp_path):
        log = VertexLogWriter(tmp_path / "x.jsonl")
        log.close()
        with pytest.raises(ValueError):
            log.append(make_series(1)[0])

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError):
            read_vertex_log(path)
        (tmp_path / "empty.jsonl").write_text("")
        with pytest.raises(ValueError):
            read_vertex_log(tmp_path / "empty.jsonl")

    def test_unreadable_header_rejected(self, tmp_path):
        path = tmp_path / "torn-header.jsonl"
        path.write_text('{"format": "repro.vertexlog/v1", "stre')
        with pytest.raises(ValueError):
            read_vertex_log(path)

    def test_ingestor_integration_recovers_session(self, tmp_path):
        db = MotionDatabase()
        db.add_patient("PA")
        path = tmp_path / "live.jsonl"
        with VertexLogWriter(path, "PA/LIVE", "PA") as log:
            ingestor = StreamIngestor(db, "PA", "LIVE", vertex_log=log)
            t, x = clean_cycles(n_cycles=4)
            ingestor.extend(t, x)
            ingestor.finish()
        recovered = read_vertex_log(path)
        np.testing.assert_allclose(
            recovered.series.times, ingestor.series.times
        )
        assert log.n_written == len(ingestor.series)


class TestInjectedLogFaults:
    def test_torn_write_persists_prefix(self, tmp_path):
        series = make_series(cycles=2)
        log = VertexLogWriter(
            tmp_path / "torn.jsonl",
            injector=FaultInjector(
                FaultPlan.crash_at("log.append", 2, "torn_write")
            ),
        )
        with pytest.raises(SimulatedCrash):
            log.extend(series)
        recovered = read_vertex_log(tmp_path / "torn.jsonl")
        assert len(recovered.series) == 2  # the two writes before the tear
        assert recovered.truncated

    def test_fsync_loss_persists_nothing_of_the_record(self, tmp_path):
        series = make_series(cycles=2)
        log = VertexLogWriter(
            tmp_path / "lost.jsonl",
            injector=FaultInjector(
                FaultPlan.crash_at("log.append", 2, "fsync_loss")
            ),
        )
        with pytest.raises(SimulatedCrash):
            log.extend(series)
        recovered = read_vertex_log(tmp_path / "lost.jsonl")
        assert len(recovered.series) == 2
        assert not recovered.truncated  # clean prefix, no partial line

    def test_crash_loses_only_the_inflight_record(self, tmp_path):
        series = make_series(cycles=2)
        log = VertexLogWriter(
            tmp_path / "crash.jsonl",
            injector=FaultInjector(FaultPlan.crash_at("log.append", 0)),
        )
        with pytest.raises(SimulatedCrash):
            log.append(series[0])
        recovered = read_vertex_log(tmp_path / "crash.jsonl")
        assert len(recovered.series) == 0
        assert not recovered.truncated

    def test_amend_site_is_independently_addressable(self, tmp_path):
        series = make_series(cycles=2)
        log = VertexLogWriter(
            tmp_path / "amend.jsonl",
            injector=FaultInjector(FaultPlan.crash_at("log.amend", 0)),
        )
        log.extend(series)  # appends pass untouched
        relabel = Vertex(
            series[-1].time, series[-1].position, BreathingState.IRR
        )
        with pytest.raises(SimulatedCrash):
            log.amend(relabel)
        recovered = read_vertex_log(tmp_path / "amend.jsonl")
        assert len(recovered.series) == len(series)
        assert recovered.series[-1].state is series[-1].state  # amend lost


class TestLogReplayProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_cycles=st.integers(3, 8),
        period=st.floats(2.5, 6.0),
        amplitude=st.floats(4.0, 15.0),
        noise=st.floats(0.0, 0.6),
    )
    def test_replay_equals_live_segmentation(
        self, seed, n_cycles, period, amplitude, noise
    ):
        """Round-trip property: a session journalled through the vertex
        log (appends *and* amendments) replays byte-identically to the
        live segmenter's series."""
        t, x = clean_cycles(
            n_cycles=n_cycles, period=period, amplitude=amplitude
        )
        rng = np.random.default_rng(seed)
        x = x + rng.normal(0.0, noise, len(x))
        db = MotionDatabase()
        db.add_patient("PA")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "live.jsonl"
            with VertexLogWriter(path, "PA/LIVE", "PA") as log:
                ingestor = StreamIngestor(db, "PA", "LIVE", vertex_log=log)
                ingestor.extend(t, x)
                ingestor.finish()
            recovered = read_vertex_log(path)
        live = ingestor.series
        assert not recovered.truncated
        assert recovered.series.times.tobytes() == live.times.tobytes()
        assert (
            recovered.series.positions.tobytes() == live.positions.tobytes()
        )
        assert recovered.series.states.tobytes() == live.states.tobytes()
