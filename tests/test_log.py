"""Tests for the append-only vertex log."""

import json

import numpy as np
import pytest

from repro.database.ingest import StreamIngestor
from repro.database.log import VertexLogWriter, read_vertex_log
from repro.database.store import MotionDatabase

from conftest import make_series
from tests_support import clean_cycles


class TestVertexLog:
    def test_roundtrip(self, tmp_path):
        series = make_series(cycles=3)
        path = tmp_path / "session.jsonl"
        with VertexLogWriter(path, "PA/S00", "PA") as log:
            log.extend(series)
        header, recovered = read_vertex_log(path)
        assert header["stream_id"] == "PA/S00"
        assert header["patient_id"] == "PA"
        np.testing.assert_allclose(recovered.times, series.times)
        np.testing.assert_array_equal(recovered.states, series.states)

    def test_torn_final_line_tolerated(self, tmp_path):
        series = make_series(cycles=2)
        path = tmp_path / "torn.jsonl"
        with VertexLogWriter(path) as log:
            log.extend(series)
        with path.open("a") as handle:
            handle.write('{"t": 99.0, "p": [1.0')  # crash mid-write
        _, recovered = read_vertex_log(path)
        assert len(recovered) == len(series)

    def test_write_after_close_rejected(self, tmp_path):
        log = VertexLogWriter(tmp_path / "x.jsonl")
        log.close()
        with pytest.raises(ValueError):
            log.append(make_series(1)[0])

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError):
            read_vertex_log(path)
        (tmp_path / "empty.jsonl").write_text("")
        with pytest.raises(ValueError):
            read_vertex_log(tmp_path / "empty.jsonl")

    def test_ingestor_integration_recovers_session(self, tmp_path):
        db = MotionDatabase()
        db.add_patient("PA")
        path = tmp_path / "live.jsonl"
        with VertexLogWriter(path, "PA/LIVE", "PA") as log:
            ingestor = StreamIngestor(db, "PA", "LIVE", vertex_log=log)
            t, x = clean_cycles(n_cycles=4)
            ingestor.extend(t, x)
            ingestor.finish()
        _, recovered = read_vertex_log(path)
        np.testing.assert_allclose(
            recovered.times, ingestor.series.times
        )
        assert log.n_written == len(ingestor.series)
