"""Tests for the fault-injection machinery itself."""

import pytest

from repro.testing.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
)


class TestFaultPlan:
    def test_duplicate_slot_rejected(self):
        specs = [
            FaultSpec("log.append", "crash", at=3),
            FaultSpec("log.append", "torn_write", at=3),
        ]
        with pytest.raises(ValueError):
            FaultPlan(specs)

    def test_same_ordinal_different_sites_allowed(self):
        plan = FaultPlan(
            [
                FaultSpec("log.append", "crash", at=3),
                FaultSpec("index.catch_up", "crash", at=3),
            ]
        )
        assert len(plan) == 2

    def test_negative_ordinal_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("log.append", "crash", at=-1)

    def test_crash_at(self):
        plan = FaultPlan.crash_at("store.remove_stream", 5)
        (spec,) = plan.specs
        assert spec == FaultSpec("store.remove_stream", "crash", 5)

    def test_seeded_is_replayable(self):
        kwargs = dict(
            seed=42,
            site="online.observe",
            kinds=("drop", "nan"),
            n_faults=6,
            horizon=100,
        )
        a, b = FaultPlan.seeded(**kwargs), FaultPlan.seeded(**kwargs)
        assert a.specs == b.specs
        assert len(a) == 6
        assert all(0 <= s.at < 100 for s in a)
        assert all(s.kind in ("drop", "nan") for s in a)
        assert FaultPlan.seeded(**{**kwargs, "seed": 43}).specs != a.specs

    def test_seeded_clamps_to_horizon(self):
        plan = FaultPlan.seeded(
            seed=0, site="x", kinds=("drop",), n_faults=50, horizon=4
        )
        assert len(plan) == 4
        assert sorted(s.at for s in plan) == [0, 1, 2, 3]


class TestFaultInjector:
    def test_counts_arrivals_and_fires_on_ordinal(self):
        plan = FaultPlan([FaultSpec("site", "drop", at=2)])
        injector = FaultInjector(plan)
        assert injector.fire("site") is None
        assert injector.fire("site") is None
        spec = injector.fire("site")
        assert spec is not None and spec.at == 2
        assert injector.fire("site") is None
        assert injector.arrivals("site") == 4
        assert injector.arrivals("other") == 0
        assert injector.fired == [spec]
        assert injector.exhausted

    def test_crash_kind_raises(self):
        injector = FaultInjector(FaultPlan.crash_at("site", 0))
        with pytest.raises(SimulatedCrash) as exc:
            injector.fire("site")
        assert exc.value.spec.site == "site"
        assert injector.fired  # journalled before the raise

    def test_callback_runs_before_crash(self):
        seen = []
        injector = FaultInjector(
            FaultPlan.crash_at("site", 0),
            callbacks={"crash": lambda spec: seen.append(spec.at)},
        )
        with pytest.raises(SimulatedCrash):
            injector.fire("site")
        assert seen == [0]

    def test_non_crash_kind_returned_for_site_to_interpret(self):
        plan = FaultPlan([FaultSpec("site", "torn_write", at=0, payload=7.0)])
        injector = FaultInjector(plan)
        spec = injector.fire("site")
        assert spec.kind == "torn_write"
        assert spec.payload == 7.0

    def test_each_spec_fires_once(self):
        plan = FaultPlan([FaultSpec("site", "drop", at=0)])
        injector = FaultInjector(plan)
        assert injector.fire("site") is not None
        for _ in range(5):
            assert injector.fire("site") is None
        assert len(injector.fired) == 1
