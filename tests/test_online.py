"""Tests for the continuous online analysis session."""

import numpy as np
import pytest

from repro.core.online import OnlineAnalysisSession, OnlineSessionConfig
from repro.signals.respiratory import RespiratorySimulator, SessionConfig


@pytest.fixture
def live_session(small_cohort):
    pid = small_cohort.patient_ids[0]
    raw = RespiratorySimulator(
        small_cohort.profile(pid), SessionConfig(duration=40.0)
    ).generate_session(5, seed=55)
    session = OnlineAnalysisSession(
        small_cohort.db, pid, session_id="ONLINE-TEST"
    )
    yield session, raw
    if session.stream_id in small_cohort.db:
        small_cohort.db.remove_stream(session.stream_id)


class TestOnlineAnalysisSession:
    def test_warmup_then_queries(self, live_session):
        session, raw = live_session
        saw_query = False
        for t, position in raw.iter_points():
            session.observe(t, position)
            if session.query is not None:
                saw_query = True
                assert session.query.stop == len(session.ingestor.series)
        assert saw_query

    def test_predict_ahead_every_frame(self, live_session):
        session, raw = live_session
        answered = total = 0
        predictions = []
        for t, position in raw.iter_points():
            session.observe(t, position)
            if session.query is None:
                continue
            total += 1
            predicted = session.predict_ahead(0.2)
            if predicted is not None:
                answered += 1
                predictions.append((t + 0.2, float(predicted[0])))
        session.finish(keep_stream=True)
        assert total > 0
        assert answered / total > 0.5
        series = session.ingestor.series
        errors = [
            abs(p - series.position_at(tt)[0])
            for tt, p in predictions
            if tt <= series.end_time
        ]
        assert np.mean(errors) < 1.5

    def test_predict_at_past_time_reads_plr(self, live_session):
        session, raw = live_session
        for t, position in raw.iter_points():
            session.observe(t, position)
            if session.query is not None:
                break
        past = session.ingestor.series.start_time + 0.5
        value = session.predict_at(past)
        np.testing.assert_allclose(
            value, session.ingestor.series.position_at(past)
        )

    def test_no_prediction_before_warmup(self, live_session):
        session, raw = live_session
        points = raw.iter_points()
        t, position = next(points)
        session.observe(t, position)
        assert session.predict_ahead(0.2) is None

    def test_finish_drop_stream(self, small_cohort):
        pid = small_cohort.patient_ids[1]
        session = OnlineAnalysisSession(
            small_cohort.db, pid, session_id="DROPME"
        )
        raw = RespiratorySimulator(
            small_cohort.profile(pid), SessionConfig(duration=10.0)
        ).generate_session(0, seed=1)
        for t, position in raw.iter_points():
            session.observe(t, position)
        session.finish(keep_stream=False)
        assert session.stream_id not in small_cohort.db

    def test_matches_refresh_on_vertices(self, live_session):
        session, raw = live_session
        snapshots = []
        for t, position in raw.iter_points():
            committed = session.observe(t, position)
            if committed and session.query is not None:
                snapshots.append(len(session.matches))
        assert snapshots
        assert any(n > 0 for n in snapshots)

    def test_config_restriction(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        other = small_cohort.patient_ids[1]
        session = OnlineAnalysisSession(
            small_cohort.db,
            pid,
            session_id="RESTRICTED",
            config=OnlineSessionConfig(restrict_patients=(other,)),
        )
        raw = RespiratorySimulator(
            small_cohort.profile(pid), SessionConfig(duration=30.0)
        ).generate_session(2, seed=9)
        for t, position in raw.iter_points():
            session.observe(t, position)
            for match in session.matches:
                assert match.stream_id.startswith(f"{other}/")
        session.finish(keep_stream=False)
