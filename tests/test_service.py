"""Tests for the service layer: builder, session manager, bus wiring.

The centrepiece is the multi-tenancy isolation contract: a
:class:`~repro.service.manager.SessionManager` hosting several concurrent
live sessions must produce **byte-identical** matches and predictions to
running each session alone against the same historical database.
"""

import copy

import numpy as np
import pytest

from repro.analysis.monitors import ThresholdAlarm
from repro.core.model import BreathingState, Vertex
from repro.core.online import OnlineAnalysisSession, OnlineSessionConfig
from repro.core.similarity import SimilarityParams
from repro.database.backend import LoggedBackend
from repro.database.store import MotionDatabase
from repro.events import EventBus
from repro.gating.gating import GatingWindow
from repro.obs import Telemetry
from repro.service import (
    GatingRecorder,
    PipelineBuilder,
    SessionManager,
    TelemetryRecorder,
    attach_alarm,
    attach_monitor,
    attach_vertex_log,
)
from repro.signals.respiratory import RespiratorySimulator, SessionConfig
from repro.testing.faults import FaultInjector, FaultPlan, SimulatedCrash

from conftest import make_series

N_TENANTS = 3
LIVE_DURATION = 20.0
LATENCY = 0.2


# -- builder -------------------------------------------------------------------


class TestPipelineBuilder:
    def test_from_session_config(self):
        config = OnlineSessionConfig(
            similarity=SimilarityParams(distance_threshold=3.5),
            min_matches=4,
            max_matches=9,
        )
        builder = PipelineBuilder.from_session_config(config)
        assert builder.similarity.distance_threshold == 3.5
        assert builder.min_matches == 4 and builder.max_matches == 9

    def test_matcher_uses_builder_params(self):
        params = SimilarityParams(distance_threshold=1.25)
        builder = PipelineBuilder(similarity=params, use_index=False)
        matcher = builder.build_matcher(MotionDatabase())
        assert matcher.params is params
        assert matcher.use_index is False

    def test_predictor_uses_builder_params(self):
        db = MotionDatabase()
        builder = PipelineBuilder(min_matches=5, max_matches=7)
        predictor = builder.build_predictor(db, builder.build_matcher(db))
        assert predictor.min_matches == 5 and predictor.max_matches == 7

    def test_build_full_pipeline(self):
        db = MotionDatabase()
        db.add_patient("PA")
        pipeline = PipelineBuilder().build(db, "PA", "LIVE")
        assert pipeline.ingestor is not None
        assert pipeline.ingestor.stream_id == "PA/LIVE"
        assert "PA/LIVE" in db
        assert pipeline.matcher is not None and pipeline.predictor is not None

    def test_build_without_patient_has_no_ingestor(self):
        pipeline = PipelineBuilder().build(MotionDatabase())
        assert pipeline.ingestor is None

    def test_make_query(self, regular_series):
        query = PipelineBuilder().make_query(regular_series)
        assert query is not None and query.n_vertices >= 4

    def test_from_domain_stamps_metadata(self):
        from repro.signals.domains import robot_arm_spec

        spec = robot_arm_spec()
        builder = PipelineBuilder.from_domain(spec)
        db = MotionDatabase()
        db.add_patient("arm")
        ingestor = builder.build_ingestor(db, "arm", "run0")
        assert db.stream(ingestor.stream_id).metadata == {
            "domain": "robot_arm"
        }
        # Each ingestor gets a *fresh* automaton (they are stateful).
        other = builder.build_ingestor(db, "arm", "run1")
        assert ingestor.segmenter.fsa is not other.segmenter.fsa


# -- multi-tenant byte-identity ------------------------------------------------


def _live_raws(cohort):
    """One fresh raw session per tenant, on a shared acquisition clock."""
    session_config = SessionConfig(duration=LIVE_DURATION)
    raws = {}
    for k, profile in enumerate(cohort.profiles[:N_TENANTS]):
        raws[profile.patient_id] = RespiratorySimulator(
            profile, session_config
        ).generate_session(9, seed=40 + k)
    return raws


def _solo_trace(db, raw):
    """Run one session alone; record every prediction plus final matches."""
    session = OnlineAnalysisSession(
        db, raw.patient_id, "MT", config=OnlineSessionConfig()
    )
    predictions = []
    for t, position in raw.iter_points():
        session.observe(t, position)
        predictions.append(session.predict_ahead(LATENCY))
    matches = [(m.stream_id, m.start, m.distance) for m in session.matches]
    session.finish(keep_stream=False)
    return predictions, matches


def _assert_same_predictions(solo, served):
    assert len(solo) == len(served)
    for a, b in zip(solo, served):
        if a is None or b is None:
            assert a is None and b is None
        else:
            # Byte-identical: same floats, not merely close.
            np.testing.assert_array_equal(a, b)


class TestMultiTenantIsolation:
    @pytest.fixture(scope="class")
    def traces(self, small_cohort):
        raws = _live_raws(small_cohort)

        solo = {
            patient_id: _solo_trace(copy.deepcopy(small_cohort.db), raw)
            for patient_id, raw in raws.items()
        }

        manager = SessionManager(copy.deepcopy(small_cohort.db))
        by_stream = {}
        for patient_id, raw in raws.items():
            session = manager.open_session(
                patient_id, "MT", config=OnlineSessionConfig()
            )
            by_stream[session.stream_id] = raw
        times = next(iter(by_stream.values())).times
        served = {sid: [] for sid in by_stream}
        for i, t in enumerate(times):
            manager.tick(
                float(t),
                {sid: raw.values[i] for sid, raw in by_stream.items()},
            )
            for sid in by_stream:
                served[sid].append(manager.predict_ahead(sid, LATENCY))
        served_matches = {
            sid: [
                (m.stream_id, m.start, m.distance)
                for m in manager.session(sid).matches
            ]
            for sid in by_stream
        }
        manager.close(keep_streams=False)
        return raws, solo, served, served_matches

    def test_enough_tenants(self, traces):
        raws, solo, served, _ = traces
        assert len(raws) >= 3

    def test_predictions_byte_identical_to_solo(self, traces):
        raws, solo, served, _ = traces
        for patient_id, raw in raws.items():
            stream_id = f"{patient_id}/MT"
            _assert_same_predictions(solo[patient_id][0], served[stream_id])

    def test_sessions_actually_predicted(self, traces):
        raws, solo, served, _ = traces
        for stream_id, predictions in served.items():
            assert any(p is not None for p in predictions), stream_id

    def test_matches_byte_identical_to_solo(self, traces):
        raws, solo, served, served_matches = traces
        for patient_id in raws:
            stream_id = f"{patient_id}/MT"
            assert solo[patient_id][1] == served_matches[stream_id]
            assert solo[patient_id][1], stream_id  # non-vacuous

    def test_no_tenant_matches_another_live_stream(self, traces):
        raws, solo, served, served_matches = traces
        live = {f"{patient_id}/MT" for patient_id in raws}
        for stream_id, matches in served_matches.items():
            foreign = live - {stream_id}
            assert all(m[0] not in foreign for m in matches)


class TestFleetBatchedServing:
    """predict_ahead_all == looping predict_ahead, bytes and counters."""

    @pytest.fixture(scope="class")
    def fleet_traces(self, small_cohort):
        raws = _live_raws(small_cohort)

        def run(batched):
            manager = SessionManager(
                copy.deepcopy(small_cohort.db), telemetry=Telemetry()
            )
            by_stream = {}
            for patient_id, raw in raws.items():
                session = manager.open_session(
                    patient_id, "MT", config=OnlineSessionConfig()
                )
                by_stream[session.stream_id] = raw
            times = next(iter(by_stream.values())).times
            out = {sid: [] for sid in by_stream}
            for i, t in enumerate(times):
                manager.tick(
                    float(t),
                    {sid: raw.values[i] for sid, raw in by_stream.items()},
                )
                if batched:
                    results = manager.predict_ahead_all(LATENCY)
                    for sid in by_stream:
                        out[sid].append(results[sid])
                else:
                    for sid in by_stream:
                        out[sid].append(manager.predict_ahead(sid, LATENCY))
            snapshot = manager.telemetry.snapshot()
            manager.close(keep_streams=False)
            return out, snapshot

        looped, looped_snap = run(batched=False)
        fleet, fleet_snap = run(batched=True)
        return looped, looped_snap, fleet, fleet_snap

    def test_byte_identical_to_per_tenant_loop(self, fleet_traces):
        looped, _, fleet, _ = fleet_traces
        assert set(looped) == set(fleet)
        for stream_id in looped:
            _assert_same_predictions(looped[stream_id], fleet[stream_id])
            assert any(p is not None for p in fleet[stream_id]), stream_id

    def test_open_order_preserved(self, fleet_traces):
        looped, _, fleet, _ = fleet_traces
        assert list(looped) == list(fleet)

    def test_counter_parity_with_loop(self, fleet_traces):
        _, looped_snap, _, fleet_snap = fleet_traces
        for name in (
            "session.predictions_total",
            "session.predictions_served",
            "session.predictions_declined",
            "prediction.plan_builds",
            "prediction.plan_cache_invalidations",
        ):
            assert looped_snap.merged.counter(
                name
            ) == fleet_snap.merged.counter(name), name

    def test_batched_serve_instrumented(self, fleet_traces):
        _, looped_snap, _, fleet_snap = fleet_traces
        batches = fleet_snap.registry.counter("service.predict_batches")
        assert batches > 0
        assert (
            fleet_snap.registry.histograms["prediction.plan_serve_s"].count
            == batches
        )
        assert looped_snap.registry.counter("service.predict_batches") == 0


# -- manager lifecycle ---------------------------------------------------------


class TestSessionManager:
    def test_open_registers_unknown_patient(self):
        manager = SessionManager()
        session = manager.open_session("fresh")
        assert "fresh" in manager.database.patient_ids
        assert manager.n_sessions == 1
        assert manager.live_stream_ids() == (session.stream_id,)

    def test_lifecycle_events(self):
        manager = SessionManager()
        kinds = []
        for kind in ("session_opened", "session_closed"):
            manager.events.subscribe(kind, lambda e: kinds.append(e.kind))
        session = manager.open_session("PA")
        manager.close_session(session.stream_id)
        assert kinds == ["session_opened", "session_closed"]
        assert manager.n_sessions == 0

    def test_close_session_can_drop_stream(self):
        manager = SessionManager()
        session = manager.open_session("PA")
        manager.close_session(session.stream_id, keep_stream=False)
        assert session.stream_id not in manager.database

    def test_context_manager_closes_all(self):
        with SessionManager() as manager:
            manager.open_session("PA")
            manager.open_session("PB")
            assert manager.n_sessions == 2
        assert manager.n_sessions == 0

    def test_tick_routes_and_reports_commits(self, raw_stream):
        manager = SessionManager()
        session = manager.open_session(raw_stream.patient_id)
        total = 0
        for i, t in enumerate(raw_stream.times[:300]):
            committed = manager.tick(
                float(t), {session.stream_id: raw_stream.values[i]}
            )
            assert set(committed) <= {session.stream_id}
            total += len(committed.get(session.stream_id, []))
        assert total == len(session.ingestor.series)
        assert total > 0

    def test_tick_ignores_unknown_streams(self):
        manager = SessionManager()
        assert manager.tick(0.0, {"nobody/LIVE": 1.0}) == {}

    def test_sessions_share_one_matcher(self):
        manager = SessionManager()
        a = manager.open_session("PA")
        b = manager.open_session("PB")
        assert a.matcher is manager.matcher
        assert b.matcher is manager.matcher

    def test_default_config_mirrors_builder(self):
        builder = PipelineBuilder(min_matches=3, max_matches=11)
        manager = SessionManager(builder=builder)
        config = manager.default_config()
        assert config.min_matches == 3 and config.max_matches == 11
        assert config.similarity is builder.similarity


# -- bus wiring ----------------------------------------------------------------


class _RecordingWriter:
    def __init__(self):
        self.committed = []
        self.amended = []

    def extend(self, vertices):
        self.committed.extend(vertices)

    def amend(self, vertex):
        self.amended.append(vertex)


def _vertices(n=3):
    return list(make_series(1))[:n]


class TestWiring:
    def test_vertex_log_follows_one_stream(self):
        bus = EventBus()
        writer = _RecordingWriter()
        attach_vertex_log(bus, writer, stream_id="PA/LIVE")
        vertices = _vertices()
        bus.publish(
            "vertex_committed", stream_id="PA/LIVE", vertices=tuple(vertices)
        )
        bus.publish(
            "vertex_committed", stream_id="PB/LIVE", vertices=tuple(vertices)
        )
        bus.publish("vertex_amended", stream_id="PA/LIVE", vertex=vertices[0])
        bus.publish("vertex_amended", stream_id="PB/LIVE", vertex=vertices[0])
        assert writer.committed == vertices
        assert writer.amended == [vertices[0]]

    def test_vertex_log_unsubscribe(self):
        bus = EventBus()
        writer = _RecordingWriter()
        on_commit, on_amend = attach_vertex_log(bus, writer)
        bus.unsubscribe("vertex_committed", on_commit)
        bus.unsubscribe("vertex_amended", on_amend)
        bus.publish(
            "vertex_committed", stream_id="PA/LIVE",
            vertices=tuple(_vertices()),
        )
        assert writer.committed == []

    def test_monitor_sees_each_vertex(self):
        bus = EventBus()
        seen = []

        class Monitor:
            def update(self, vertex):
                seen.append(vertex)

        attach_monitor(bus, Monitor())
        vertices = _vertices()
        bus.publish(
            "vertex_committed", stream_id="PA/LIVE", vertices=tuple(vertices)
        )
        assert seen == vertices

    def test_alarm_transitions_republished(self):
        bus = EventBus()

        class Primary:
            def update(self, vertex):
                return float(vertex.position[0])

        alarm = ThresholdAlarm(Primary(), low=-5.0, high=5.0)
        attach_alarm(bus, alarm)
        alarms = []
        bus.subscribe("alarm", alarms.append)
        vertices = [
            Vertex(0.0, (0.0,), BreathingState.IN),
            Vertex(1.0, (10.0,), BreathingState.EX),  # leaves the band
            Vertex(2.0, (0.0,), BreathingState.EOE),  # re-enters
        ]
        bus.publish(
            "vertex_committed", stream_id="PA/LIVE", vertices=tuple(vertices)
        )
        assert [a["active"] for a in alarms] == [True, False]
        assert alarms[0]["stream_id"] == "PA/LIVE"
        assert alarms[0]["value"] == 10.0

    def test_gating_recorder_duty_cycle(self):
        bus = EventBus()
        recorder = GatingRecorder(bus, GatingWindow(-1.0, 1.0))
        for time, primary in [(0.0, 0.5), (1.0, 3.0), (2.0, -0.5), (3.0, 9.0)]:
            bus.publish(
                "prediction_served",
                stream_id="PA/LIVE",
                time=time,
                horizon=LATENCY,
                position=np.asarray([primary]),
                n_matches=4,
            )
        assert [on for _, on, _ in recorder.decisions] == [
            True, False, True, False,
        ]
        assert recorder.duty_cycle == 0.5

    def test_gating_recorder_empty_is_nan(self):
        recorder = GatingRecorder(EventBus(), GatingWindow(-1.0, 1.0))
        assert np.isnan(recorder.duty_cycle)


class TestTelemetryAggregation:
    """Per-tenant telemetry scopes roll up exactly into the fleet view."""

    @pytest.fixture(scope="class")
    def telemetry_run(self, small_cohort):
        raws = _live_raws(small_cohort)
        telemetry = Telemetry(snapshot_interval=5.0)
        manager = SessionManager(
            copy.deepcopy(small_cohort.db), telemetry=telemetry
        )
        recorder = TelemetryRecorder(manager.events)
        by_stream = {}
        for patient_id, raw in raws.items():
            session = manager.open_session(
                patient_id, "MT", config=OnlineSessionConfig()
            )
            by_stream[session.stream_id] = raw
        gauge_open = telemetry.registry.snapshot().gauges[
            "service.live_sessions"
        ]
        times = next(iter(by_stream.values())).times
        for i, t in enumerate(times):
            manager.tick(
                float(t),
                {sid: raw.values[i] for sid, raw in by_stream.items()},
            )
        final = telemetry.snapshot(time=float(times[-1]))
        manager.close(keep_streams=False)
        gauge_closed = telemetry.registry.snapshot().gauges[
            "service.live_sessions"
        ]
        return raws, len(times), final, recorder, gauge_open, gauge_closed

    def test_one_scope_per_tenant(self, telemetry_run):
        raws, _, final, _, _, _ = telemetry_run
        assert set(final.scopes) == {f"{pid}/MT" for pid in raws}
        assert len(final.scopes) == N_TENANTS

    def test_scope_counts_sum_to_merged_global(self, telemetry_run):
        raws, n_ticks, final, _, _, _ = telemetry_run
        per_tenant = [
            final.scopes[scope].counter("session.samples")
            for scope in final.scopes
        ]
        assert all(count == n_ticks for count in per_tenant)
        merged = final.merged
        assert merged.counter("session.samples") == sum(per_tenant)
        # Service-level counters live on the root and survive the fold.
        assert merged.counter("service.ticks") == n_ticks
        assert merged.counter("service.frames") == n_ticks * N_TENANTS

    def test_service_root_counters(self, telemetry_run):
        _, n_ticks, final, _, _, _ = telemetry_run
        root = final.registry
        assert root.counter("service.ticks") == n_ticks
        assert root.counter("service.frames") == n_ticks * N_TENANTS
        assert root.histograms["service.tick_s"].count == n_ticks
        samples = root.histograms["service.tick_samples"]
        assert samples.count == n_ticks
        assert samples.vmin == samples.vmax == N_TENANTS

    def test_live_sessions_gauge_tracks_lifecycle(self, telemetry_run):
        _, _, _, _, gauge_open, gauge_closed = telemetry_run
        assert gauge_open == N_TENANTS
        assert gauge_closed == 0

    def test_periodic_snapshots_published(self, telemetry_run):
        _, _, final, recorder, _, _ = telemetry_run
        # 20 stream-seconds at a 5 s cadence: the baseline snapshot plus
        # one per elapsed interval.
        assert len(recorder.snapshots) >= 1 + int(LIVE_DURATION / 5.0) - 1
        assert recorder.latest is recorder.snapshots[-1]
        published_times = [s.time for s in recorder.snapshots]
        assert published_times == sorted(published_times)
        # The bus snapshots are cuts of the same tree the final snapshot
        # closed over; counters only ever grow between cuts.
        assert (
            recorder.latest.merged.counter("session.samples")
            <= final.merged.counter("session.samples")
        )

    def test_span_tree_covers_the_pipeline(self, telemetry_run):
        _, _, final, _, _, _ = telemetry_run
        spans = {(s.name, s.parent) for s in final.spans}
        assert ("service.tick", None) in spans
        assert ("matcher.find", "service.tick") in spans


class TestTelemetryCrashRecovery:
    """Crash/replay must not double-count commits (chaos-seed contract).

    The facade counts *attempted* writes before delegation; the logged
    backend counts *durable* journal records only after a full batch
    lands.  An injected crash makes the two diverge by exactly the lost
    batch, and reopening the directory (the replay path) must not bump
    either counter.
    """

    def test_no_double_counted_commits_across_crash_replay(self, tmp_path):
        vertices = list(make_series(cycles=4))
        crash_at = 7
        injector = FaultInjector(FaultPlan.crash_at("log.append", crash_at))
        telemetry = Telemetry()
        db = MotionDatabase(
            backend=LoggedBackend(tmp_path, injector=injector),
            telemetry=telemetry,
        )
        db.add_patient("PA")
        db.add_stream("PA", "LIVE")
        committed = 0
        with pytest.raises(SimulatedCrash):
            for vertex in vertices:
                db.commit_vertices("PA/LIVE", [vertex])
                committed += 1
        assert committed == crash_at
        snap = telemetry.registry.snapshot()
        # Attempted and durable diverge by exactly the in-flight batch.
        assert snap.counter("backend.commit_batches") == committed + 1
        assert snap.counter("backend.committed_vertices") == committed + 1
        assert snap.counter("backend.journal_records") == committed
        db.close()

        # Second life: reopen replays the journal — a read path, so a
        # fresh registry must stay at zero.
        fresh = Telemetry()
        db2 = MotionDatabase(
            backend=LoggedBackend(tmp_path), telemetry=fresh
        )
        recovered = len(db2.stream("PA/LIVE").series)
        assert recovered == committed  # the crash lost only its batch
        snap = fresh.registry.snapshot()
        assert snap.counter("backend.commit_batches") == 0
        assert snap.counter("backend.journal_records") == 0

        # Live feeding resumes: counters track exactly the new writes.
        rest = vertices[recovered:]
        for vertex in rest:
            db2.commit_vertices("PA/LIVE", [vertex])
        snap = fresh.registry.snapshot()
        assert snap.counter("backend.commit_batches") == len(rest)
        assert snap.counter("backend.committed_vertices") == len(rest)
        assert snap.counter("backend.journal_records") == len(rest)
        db2.close()

        # Third life: everything is durable, nothing was double-journaled.
        db3 = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert len(db3.stream("PA/LIVE").series) == len(vertices)
        db3.close()

    @pytest.mark.chaos
    @pytest.mark.parametrize("seed", [0, 2, 3])
    def test_divergence_bounded_at_every_append(self, seed, tmp_path):
        """Sweep the crash point: attempted − durable is always exactly
        the one in-flight batch, never more (no silent loss), never less
        (no double count)."""
        vertices = list(make_series(cycles=3))
        rng = np.random.default_rng(seed)
        crash_at = int(rng.integers(0, len(vertices)))
        injector = FaultInjector(FaultPlan.crash_at("log.append", crash_at))
        telemetry = Telemetry()
        db = MotionDatabase(
            backend=LoggedBackend(tmp_path / "db", injector=injector),
            telemetry=telemetry,
        )
        db.add_patient("PA")
        db.add_stream("PA", "LIVE")
        with pytest.raises(SimulatedCrash):
            for vertex in vertices:
                db.commit_vertices("PA/LIVE", [vertex])
        snap = telemetry.registry.snapshot()
        diverged = snap.counter("backend.commit_batches") - snap.counter(
            "backend.journal_records"
        )
        assert diverged == 1
        db.close()
        db2 = MotionDatabase(backend=LoggedBackend(tmp_path / "db"))
        assert len(db2.stream("PA/LIVE").series) == crash_at
        db2.close()


class TestSessionEvents:
    def test_query_and_prediction_events_flow(self, raw_stream):
        manager = SessionManager()
        session = manager.open_session(raw_stream.patient_id)
        refreshed = []
        servings = []
        manager.events.subscribe("query_refreshed", refreshed.append)
        manager.events.subscribe("prediction_served", servings.append)
        for i, t in enumerate(raw_stream.times):
            manager.tick(float(t), {session.stream_id: raw_stream.values[i]})
            manager.predict_ahead(session.stream_id, LATENCY)
        assert refreshed and all(
            e["stream_id"] == session.stream_id for e in refreshed
        )
        assert servings
        # The horizon is measured from the last committed vertex, so it
        # is at least the requested latency.
        assert all(e["horizon"] >= LATENCY - 1e-9 for e in servings)
        assert all(e["n_matches"] >= 1 for e in servings)
