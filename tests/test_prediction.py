"""Tests for the online predictor."""

import pytest

from repro.core.matching import SubsequenceMatcher
from repro.core.model import PLRSeries, Vertex
from repro.core.prediction import OnlinePredictor
from repro.database.store import MotionDatabase

from conftest import EOE, EX, IN


def periodic_series(cycles, amplitude=10.0, period=3.0, baseline=0.0):
    series = PLRSeries()
    t = 0.0
    third = period / 3.0
    for _ in range(cycles):
        series.append(Vertex(t, (baseline,), IN))
        series.append(Vertex(t + third, (baseline + amplitude,), EX))
        series.append(Vertex(t + 2 * third, (baseline,), EOE))
        t += period
    series.append(Vertex(t, (baseline,), IN))
    return series


@pytest.fixture
def setup():
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_stream("PA", "HIST", series=periodic_series(6))
    live = periodic_series(3)
    db.add_stream("PA", "LIVE", series=live)
    matcher = SubsequenceMatcher(db)
    predictor = OnlinePredictor(db, matcher, min_matches=1)
    return db, matcher, predictor, live


class TestPredict:
    def test_exact_periodicity_predicted_exactly(self, setup):
        db, matcher, predictor, live = setup
        query = live.suffix(7)
        # Query ends at an IN vertex (baseline); 0.5 s into the next
        # inhale segment (duration 1.0, amplitude 10) -> position 5.0.
        prediction = predictor.predict(query, "PA/LIVE", horizon=0.5)
        assert prediction is not None
        assert prediction.primary == pytest.approx(5.0, abs=1e-6)

    def test_zero_horizon_returns_current(self, setup):
        db, matcher, predictor, live = setup
        query = live.suffix(7)
        prediction = predictor.predict(query, "PA/LIVE", horizon=0.0)
        assert prediction.primary == pytest.approx(
            live.positions[-1][0], abs=1e-9
        )

    def test_baseline_shift_invariance(self, setup):
        db, matcher, predictor, _ = setup
        shifted = periodic_series(3, baseline=50.0)
        db.add_stream("PA", "SHIFTED", series=shifted)
        query = shifted.suffix(7)
        prediction = predictor.predict(query, "PA/SHIFTED", horizon=0.5)
        assert prediction is not None
        assert prediction.primary == pytest.approx(55.0, abs=1e-6)

    def test_min_matches_gate(self, setup):
        db, matcher, _, live = setup
        strict = OnlinePredictor(db, matcher, min_matches=10_000)
        query = live.suffix(7)
        assert strict.predict(query, "PA/LIVE", horizon=0.2) is None

    def test_prediction_time_metadata(self, setup):
        db, matcher, predictor, live = setup
        query = live.suffix(7)
        prediction = predictor.predict(query, "PA/LIVE", horizon=0.25)
        assert prediction.time == pytest.approx(
            query.last_vertex.time + 0.25
        )
        assert prediction.horizon == 0.25
        assert prediction.n_matches >= 1

    def test_anchor_modes_agree_on_perfect_matches(self, setup):
        db, matcher, _, live = setup
        query = live.suffix(7)
        last = OnlinePredictor(db, matcher, min_matches=1, anchor="last")
        first = OnlinePredictor(db, matcher, min_matches=1, anchor="first")
        p_last = last.predict(query, "PA/LIVE", horizon=0.5)
        p_first = first.predict(query, "PA/LIVE", horizon=0.5)
        # The history is perfectly periodic, so both anchors coincide.
        assert p_last.primary == pytest.approx(p_first.primary, abs=1e-6)

    def test_invalid_configuration(self, setup):
        db, matcher, _, _ = setup
        with pytest.raises(ValueError):
            OnlinePredictor(db, matcher, min_matches=0)
        with pytest.raises(ValueError):
            OnlinePredictor(db, matcher, anchor="middle")


class TestSegmentForecast:
    def test_forecast_regular_cycle(self, setup):
        db, matcher, predictor, live = setup
        query = live.suffix(7)
        forecast = predictor.forecast_segment(query, "PA/LIVE")
        assert forecast is not None
        # The next segment is always an IN rise: amplitude 10, duration 1.
        assert forecast.amplitude == pytest.approx(10.0, abs=1e-6)
        assert forecast.duration == pytest.approx(1.0, abs=1e-6)

    def test_forecast_none_without_matches(self, setup):
        db, matcher, _, live = setup
        strict = OnlinePredictor(db, matcher, min_matches=10_000)
        assert strict.forecast_segment(live.suffix(7), "PA/LIVE") is None
