"""Tests for the pluggable storage backends and crash-safe persistence."""

import json

import numpy as np
import pytest

from repro.database.backend import (
    BACKEND_NAMES,
    InMemoryBackend,
    LoggedBackend,
    atomic_write_text,
    create_backend,
)
from repro.core.model import BreathingState, Vertex
from repro.database.ingest import StreamIngestor
from repro.database.store import MotionDatabase
from repro.signals.patients import PatientAttributes

from conftest import make_series


class TestCreateBackend:
    def test_registry_names(self):
        assert set(BACKEND_NAMES) == {"in_memory", "logged"}

    def test_in_memory(self):
        assert isinstance(create_backend("in_memory"), InMemoryBackend)

    def test_logged_requires_directory(self):
        with pytest.raises(ValueError):
            create_backend("logged")

    def test_logged(self, tmp_path):
        backend = create_backend("logged", tmp_path / "db")
        assert isinstance(backend, LoggedBackend)
        backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_backend("cloud")


class TestBackendEvents:
    def test_mutations_are_published(self):
        backend = InMemoryBackend()
        seen = []
        for kind in ("patient_added", "stream_added", "stream_removed"):
            backend.events.subscribe(kind, seen.append)
        backend.add_patient("PA")
        backend.add_stream("PA", "S00", series=make_series(2))
        backend.remove_stream("PA/S00")
        assert [e.kind for e in seen] == [
            "patient_added",
            "stream_added",
            "stream_removed",
        ]
        assert seen[1]["stream_id"] == "PA/S00"
        assert seen[2]["patient_id"] == "PA"

    def test_facade_exposes_backend_bus(self):
        db = MotionDatabase()
        seen = []
        db.events.subscribe("stream_added", seen.append)
        db.add_patient("PA")
        db.add_stream("PA", "S00")
        assert len(seen) == 1


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        path.write_text("original")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.database.backend.os.replace", broken_replace
        )
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]  # temp file cleaned up


class TestAtomicSnapshotSave:
    def test_interrupted_save_preserves_snapshot(self, tmp_path, monkeypatch):
        db = MotionDatabase()
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(3))
        path = tmp_path / "snapshot.json"
        db.save(path)

        db.add_stream("PA", "S01", series=make_series(2))
        monkeypatch.setattr(
            "repro.database.backend.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("power loss")),
        )
        with pytest.raises(OSError):
            db.save(path)
        monkeypatch.undo()
        # The old snapshot is still complete and loadable.
        loaded = MotionDatabase.load(path)
        assert loaded.stream_ids == ("PA/S00",)


def _populate(backend) -> MotionDatabase:
    db = MotionDatabase(backend=backend)
    attrs = PatientAttributes("PA", 61, "M", "lung_upper", "none")
    db.add_patient("PA", attrs)
    db.add_patient("PB")
    db.add_stream("PA", "S00", series=make_series(3))
    db.add_stream("PB", "S00", series=make_series(4), metadata={"k": "v"})
    return db


class TestLoggedBackend:
    def test_layout(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        db.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "manifest.json", "stream-00000.jsonl", "stream-00001.jsonl",
        ]

    def test_reopen_restores_everything(self, tmp_path):
        original = _populate(LoggedBackend(tmp_path))
        original.close()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert reopened.patient_ids == ("PA", "PB")
        assert reopened.stream_ids == ("PA/S00", "PB/S00")
        attrs = reopened.patient("PA").attributes
        assert attrs is not None and attrs.tumor_site == "lung_upper"
        assert reopened.patient("PB").attributes is None
        assert reopened.stream("PB/S00").metadata == {"k": "v"}
        for stream_id in original.stream_ids:
            a = original.stream(stream_id).series
            b = reopened.stream(stream_id).series
            np.testing.assert_array_equal(a.times, b.times)
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.states, b.states)
        reopened.close()

    def test_live_commits_survive_reopen(self, tmp_path, raw_stream):
        db = MotionDatabase(backend=LoggedBackend(tmp_path))
        db.add_patient(raw_stream.patient_id)
        ingestor = StreamIngestor(db, raw_stream.patient_id, "LIVE")
        ingestor.extend(raw_stream.times, raw_stream.values)
        ingestor.finish()
        series = ingestor.series
        assert len(series) > 5
        db.close()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        restored = reopened.stream(ingestor.stream_id).series
        np.testing.assert_array_equal(restored.times, series.times)
        np.testing.assert_array_equal(restored.positions, series.positions)
        np.testing.assert_array_equal(restored.states, series.states)
        reopened.close()

    def test_amend_survives_reopen(self, tmp_path):
        db = MotionDatabase(backend=LoggedBackend(tmp_path))
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(2))
        series = db.stream("PA/S00").series
        old = series.vertex(-1)
        amended = Vertex(old.time, old.position, BreathingState.IRR)
        series.replace_last(amended)
        db.amend_vertex("PA/S00", amended)
        db.close()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        restored = reopened.stream("PA/S00").series
        assert restored.states[-1] == int(BreathingState.IRR)
        reopened.close()

    def test_remove_stream_deletes_log(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        db.remove_stream("PA/S00")
        db.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        listed = {s["stream_id"] for s in manifest["streams"]}
        assert listed == {"PB/S00"}
        assert not (tmp_path / "stream-00000.jsonl").exists()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert reopened.stream_ids == ("PB/S00",)
        reopened.close()

    def test_file_names_never_reused(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        db.remove_stream("PB/S00")
        db.add_stream("PB", "S01", series=make_series(1))
        db.close()
        # The counter survives removals (and reopens), so a new stream
        # never claims a dead stream's file name.
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        files = {s["stream_id"]: s["file"] for s in manifest["streams"]}
        assert files["PB/S01"] == "stream-00002.jsonl"

    def test_torn_tail_is_healed_on_reopen(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        db.close()
        log = tmp_path / "stream-00000.jsonl"
        clean_lines = log.read_text().splitlines()
        # Simulate a crash mid-append: a torn half-record at the tail.
        with log.open("a") as handle:
            handle.write('{"t": 99.0, "p": [1.')

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        series = reopened.stream("PA/S00").series
        assert len(series) == len(clean_lines) - 1  # header + clean prefix
        # The log itself was rewritten without the torn tail.
        assert log.read_text().splitlines() == clean_lines
        reopened.close()

    def test_reopen_rejects_foreign_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            LoggedBackend(tmp_path)

    def test_appends_after_reopen_extend_the_log(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        db.close()
        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        extra = make_series(1, start=100.0)
        reopened.commit_vertices("PA/S00", list(extra))
        reopened.close()
        # Not replayed into PA/S00's in-memory series here, but journalled:
        third = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert len(third.stream("PA/S00").series) == 10 + len(extra)
        third.close()


class TestCompaction:
    def test_compact_writes_snapshot_and_rotates_journals(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        stats = db.compact()
        assert stats["snapshot_id"] == 1
        assert stats["n_streams"] == 2
        assert stats["segments_rotated"] == 2
        assert stats["segments_deleted"] == 0  # nothing covered twice yet
        snap_dir = tmp_path / "snapshots" / "snap-000001"
        manifest = json.loads((snap_dir / "snapshot.json").read_text())
        assert manifest["format"] == "repro.loggeddb.snapshot/v1"
        assert {s["stream_id"] for s in manifest["streams"]} == {
            "PA/S00", "PB/S00",
        }
        for entry in manifest["streams"]:
            for column in ("times", "positions", "states"):
                assert (snap_dir / f"{entry['prefix']}-{column}.npy").exists()
        # Journals rotated: the pre-compaction segments are retained
        # (fallback material) and a fresh tail segment opened per stream.
        root = json.loads((tmp_path / "manifest.json").read_text())
        for stream in root["streams"]:
            assert len(stream["segments"]) == 2
            assert stream["rotations"] == 1
        db.close()

    def test_reopen_after_compact_replays_only_the_tail(self, tmp_path):
        original = _populate(LoggedBackend(tmp_path))
        original.compact()
        original.close()

        backend = LoggedBackend(tmp_path)
        reopened = MotionDatabase(backend=backend)
        stats = backend.reopen_stats
        assert stats["snapshot_id"] == 1
        assert stats["torn_snapshots"] == 0
        assert stats["streams_from_snapshot"] == 2
        # Only the rotated (empty) tail segments are replayed — the
        # covered pre-compaction journals are never opened.
        assert stats["segments_replayed"] == 2
        assert not any(
            name == "stream-00000.jsonl" for name in stats["files_read"]
        )
        for stream_id in original.stream_ids:
            a = original.stream(stream_id).series
            b = reopened.stream(stream_id).series
            np.testing.assert_array_equal(a.times, b.times)
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.states, b.states)
        reopened.close()

    def test_tail_written_after_compact_survives_reopen(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        n_before = len(db.stream("PA/S00").series)
        db.compact()
        extra = make_series(2, start=100.0)
        db.commit_vertices("PA/S00", list(extra))
        db.close()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert len(reopened.stream("PA/S00").series) == n_before + len(extra)
        reopened.close()

    def test_removed_stream_costs_no_io_on_reopen(self, tmp_path):
        """Streams tombstoned after the snapshot was cut are skipped
        without touching their column files (the no-I/O regression)."""
        db = _populate(LoggedBackend(tmp_path))
        db.compact()
        db.remove_stream("PA/S00")
        db.close()

        snap_dir = tmp_path / "snapshots" / "snap-000001"
        manifest = json.loads((snap_dir / "snapshot.json").read_text())
        dead_prefix = next(
            s["prefix"]
            for s in manifest["streams"]
            if s["stream_id"] == "PA/S00"
        )

        backend = LoggedBackend(tmp_path)
        reopened = MotionDatabase(backend=backend)
        stats = backend.reopen_stats
        assert reopened.stream_ids == ("PB/S00",)
        assert stats["tombstones_skipped"] == 1
        assert not any(
            dead_prefix in name for name in stats["files_read"]
        )
        reopened.close()

    def test_recreated_stream_ignores_dead_incarnation_snapshot(
        self, tmp_path
    ):
        """A stream removed after the snapshot and re-created under the
        same id must not adopt the dead incarnation's columns: segment
        base names are never reused, so reopen tells them apart."""
        db = _populate(LoggedBackend(tmp_path))
        db.compact()
        db.remove_stream("PA/S00")
        db.add_stream("PA", "S00", series=make_series(1, start=50.0))
        n_new = len(db.stream("PA/S00").series)
        db.close()

        backend = LoggedBackend(tmp_path)
        reopened = MotionDatabase(backend=backend)
        assert len(reopened.stream("PA/S00").series) == n_new
        assert reopened.stream("PA/S00").series.times[0] == 50.0
        assert backend.reopen_stats["tombstones_skipped"] == 1
        reopened.close()

    def test_second_compact_prunes_covered_segments(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        n_before = len(db.stream("PA/S00").series)
        db.compact()
        extra = make_series(2, start=100.0)
        # Mirror the ingest path: the live series and journal advance
        # together (compaction snapshots the in-memory state).
        live = db.stream("PA/S00").series
        for vertex in extra:
            live.append(vertex)
        db.commit_vertices("PA/S00", list(extra))
        stats = db.compact()
        assert stats["snapshot_id"] == 2
        # Segments covered by snapshot 1 are no longer fallback material
        # for snapshot 2 and were deleted.
        assert stats["segments_deleted"] == 2
        db.close()
        root = json.loads((tmp_path / "manifest.json").read_text())
        assert root["snapshots"] == [1, 2]
        assert root["history_complete"] is False
        assert not (tmp_path / "stream-00000.jsonl").exists()
        # Generation 1 itself is retained as the torn-manifest fallback.
        assert (tmp_path / "snapshots" / "snap-000001").exists()

        reopened = MotionDatabase(backend=LoggedBackend(tmp_path))
        assert (
            len(reopened.stream("PA/S00").series) == n_before + len(extra)
        )
        reopened.close()

    def test_in_memory_backend_has_no_compaction(self):
        db = MotionDatabase()
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(2))
        assert db.compact() is None

    def test_compaction_event_is_published(self, tmp_path):
        db = _populate(LoggedBackend(tmp_path))
        seen = []
        db.events.subscribe("backend_compacted", seen.append)
        db.compact()
        db.close()
        assert len(seen) == 1
        assert seen[0]["snapshot_id"] == 1
        assert seen[0]["n_streams"] == 2


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
class TestFacadeOverBothBackends:
    def _db(self, backend_name, tmp_path):
        directory = tmp_path / "db" if backend_name == "logged" else None
        return MotionDatabase(backend=create_backend(backend_name, directory))

    def test_crud_and_epoch(self, backend_name, tmp_path):
        db = self._db(backend_name, tmp_path)
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(2))
        db.add_stream("PA", "S01", series=make_series(3))
        assert db.n_streams == 2 and "PA/S00" in db
        assert db.removal_epoch == 0
        db.remove_stream("PA/S00")
        assert db.removal_epoch == 1
        assert db.stream_ids == ("PA/S01",)
        db.close()

    def test_duplicate_rejected(self, backend_name, tmp_path):
        db = self._db(backend_name, tmp_path)
        db.add_patient("PA")
        db.add_stream("PA", "S00")
        with pytest.raises(KeyError):
            db.add_patient("PA")
        with pytest.raises(KeyError):
            db.add_stream("PA", "S00")
        db.close()

    def test_snapshot_roundtrip(self, backend_name, tmp_path):
        db = self._db(backend_name, tmp_path)
        db.add_patient("PA")
        db.add_stream("PA", "S00", series=make_series(3))
        path = tmp_path / "snapshot.json"
        db.save(path)
        loaded = MotionDatabase.load(path)
        np.testing.assert_array_equal(
            loaded.stream("PA/S00").series.times,
            db.stream("PA/S00").series.times,
        )
        db.close()
