"""Tests for the hierarchical motion database (store, records, persistence)."""

import numpy as np
import pytest

from repro.core.similarity import SourceRelation
from repro.database.store import MotionDatabase
from repro.signals.patients import PatientAttributes

from conftest import make_series, make_test_database


@pytest.fixture
def db():
    database = make_test_database()
    attrs = PatientAttributes("PA", 60, "F", "lung_lower", "none")
    database.add_patient("PA", attrs)
    database.add_patient("PB")
    database.add_stream("PA", "S00", series=make_series(3))
    database.add_stream("PA", "S01", series=make_series(2))
    database.add_stream("PB", "S00", series=make_series(4))
    return database


class TestStore:
    def test_counts(self, db):
        assert db.n_patients == 2
        assert db.n_streams == 3
        assert db.n_vertices == (10 + 7 + 13)

    def test_duplicate_patient_rejected(self, db):
        with pytest.raises(KeyError):
            db.add_patient("PA")

    def test_duplicate_stream_rejected(self, db):
        with pytest.raises(KeyError):
            db.add_stream("PA", "S00")

    def test_stream_requires_patient(self, db):
        with pytest.raises(KeyError):
            db.add_stream("ZZ", "S00")

    def test_lookup_and_contains(self, db):
        record = db.stream("PA/S00")
        assert record.patient_id == "PA"
        assert "PA/S00" in db
        assert "PA/S99" not in db
        with pytest.raises(KeyError):
            db.stream("nope")
        with pytest.raises(KeyError):
            db.patient("nope")

    def test_patient_record_navigation(self, db):
        patient = db.patient("PA")
        assert patient.n_streams == 2
        assert patient.stream_ids == ("PA/S00", "PA/S01")

    def test_remove_stream(self, db):
        db.remove_stream("PA/S01")
        assert db.n_streams == 2
        assert "PA/S01" not in db
        assert db.patient("PA").n_streams == 1
        with pytest.raises(KeyError):
            db.remove_stream("PA/S01")

    def test_iteration_order(self, db):
        assert [s.stream_id for s in db.iter_streams()] == [
            "PA/S00",
            "PA/S01",
            "PB/S00",
        ]
        assert [p.patient_id for p in db.iter_patients()] == ["PA", "PB"]


class TestRelation:
    def test_same_session(self, db):
        assert db.relation("PA/S00", "PA/S00") is SourceRelation.SAME_SESSION

    def test_same_patient(self, db):
        assert db.relation("PA/S00", "PA/S01") is SourceRelation.SAME_PATIENT

    def test_other_patient(self, db):
        assert db.relation("PA/S00", "PB/S00") is SourceRelation.OTHER_PATIENT


class TestPersistence:
    def test_roundtrip(self, db, tmp_path):
        path = tmp_path / "snapshot.json"
        db.save(path)
        loaded = MotionDatabase.load(path)
        assert loaded.n_patients == db.n_patients
        assert loaded.stream_ids == db.stream_ids
        original = db.stream("PA/S00").series
        restored = loaded.stream("PA/S00").series
        np.testing.assert_allclose(restored.times, original.times)
        np.testing.assert_allclose(restored.positions, original.positions)
        np.testing.assert_array_equal(restored.states, original.states)
        attrs = loaded.patient("PA").attributes
        assert attrs is not None and attrs.tumor_site == "lung_lower"
        assert loaded.patient("PB").attributes is None

    def test_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            MotionDatabase.load(path)


class TestRemovalEpoch:
    def test_bumps_on_every_removal(self, db):
        assert db.removal_epoch == 0
        db.remove_stream("PA/S01")
        assert db.removal_epoch == 1
        db.remove_stream("PB/S00")
        assert db.removal_epoch == 2

    def test_failed_removal_does_not_bump(self, db):
        with pytest.raises(KeyError):
            db.remove_stream("PA/S99")
        assert db.removal_epoch == 0

    def test_additions_do_not_bump(self, db):
        db.add_stream("PB", "S01", series=make_series(2))
        assert db.removal_epoch == 0
