"""Unit tests for the core PLR data model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    BreathingState,
    PLRSeries,
    Segment,
    Vertex,
    cycles_to_vertices,
    vertices_to_cycles,
)

from conftest import EOE, EX, IN, IRR, make_series


class TestBreathingState:
    def test_four_states(self):
        assert len(BreathingState) == 4

    def test_regularity(self):
        assert EX.is_regular and EOE.is_regular and IN.is_regular
        assert not IRR.is_regular

    def test_int_values_stable(self):
        assert [int(s) for s in (EX, EOE, IN, IRR)] == [0, 1, 2, 3]


class TestVertex:
    def test_scalar_position_normalised(self):
        v = Vertex(1.0, 5.0, EX)
        assert v.position == (5.0,)
        assert v.ndim == 1

    def test_multidim_position(self):
        v = Vertex(0.0, (1.0, 2.0, 3.0), IN)
        assert v.ndim == 3
        np.testing.assert_allclose(v.position_array(), [1.0, 2.0, 3.0])

    def test_state_coerced(self):
        v = Vertex(0.0, 1.0, 2)
        assert v.state is IN

    def test_frozen(self):
        v = Vertex(0.0, 1.0, EX)
        with pytest.raises(AttributeError):
            v.time = 2.0


class TestSegment:
    def test_basic_geometry(self):
        seg = Segment(Vertex(0.0, 0.0, IN), Vertex(2.0, 10.0, EX))
        assert seg.state is IN
        assert seg.duration == 2.0
        assert seg.amplitude == 10.0
        np.testing.assert_allclose(seg.slope, [5.0])

    def test_amplitude_is_norm(self):
        seg = Segment(Vertex(0.0, (0.0, 0.0), IN), Vertex(1.0, (3.0, 4.0), EX))
        assert seg.amplitude == pytest.approx(5.0)

    def test_position_interpolation(self):
        seg = Segment(Vertex(0.0, 0.0, IN), Vertex(2.0, 10.0, EX))
        np.testing.assert_allclose(seg.position_at(1.0), [5.0])

    def test_zero_duration_slope_raises(self):
        seg = Segment(Vertex(0.0, 0.0, IN), Vertex(0.0, 1.0, EX))
        with pytest.raises(ValueError):
            _ = seg.slope


class TestPLRSeries:
    def test_append_and_len(self):
        series = PLRSeries()
        series.append(Vertex(0.0, 1.0, EX))
        series.append(Vertex(1.0, 2.0, EOE))
        assert len(series) == 2
        assert series.n_segments == 1

    def test_append_requires_increasing_time(self):
        series = PLRSeries()
        series.append(Vertex(1.0, 0.0, EX))
        with pytest.raises(ValueError):
            series.append(Vertex(1.0, 1.0, EOE))

    def test_append_requires_consistent_ndim(self):
        series = PLRSeries()
        series.append(Vertex(0.0, (1.0, 2.0), EX))
        with pytest.raises(ValueError):
            series.append(Vertex(1.0, 3.0, EOE))

    def test_replace_last(self):
        series = make_series(cycles=1)
        last = series[-1]
        series.replace_last(Vertex(last.time + 0.5, last.position, IRR))
        assert series[-1].state is IRR

    def test_replace_last_empty_raises(self):
        with pytest.raises(IndexError):
            PLRSeries().replace_last(Vertex(0.0, 0.0, EX))

    def test_dense_views_align(self, regular_series):
        s = regular_series
        assert len(s.times) == len(s) == len(s.positions) == len(s.states)
        assert len(s.durations) == s.n_segments == len(s.amplitudes)

    def test_views_read_only(self, regular_series):
        with pytest.raises(ValueError):
            regular_series.times[0] = 99.0

    def test_cache_invalidated_on_append(self):
        series = make_series(cycles=1)
        n = len(series.times)
        series.append(Vertex(series.end_time + 1.0, 0.0, EX))
        assert len(series.times) == n + 1

    def test_segment_accessor(self, regular_series):
        seg = regular_series.segment(0)
        assert seg.state is IN
        assert seg.amplitude == pytest.approx(10.0)
        with pytest.raises(IndexError):
            regular_series.segment(regular_series.n_segments)

    def test_negative_segment_index(self, regular_series):
        seg = regular_series.segment(-1)
        assert seg.end.time == regular_series.end_time

    def test_position_at_interior(self, regular_series):
        third = 1.0  # period 3, three equal segments
        np.testing.assert_allclose(
            regular_series.position_at(0.5 * third), [5.0]
        )

    def test_position_at_clamps(self, regular_series):
        np.testing.assert_allclose(regular_series.position_at(-5.0), [0.0])
        np.testing.assert_allclose(regular_series.position_at(1e9), [0.0])

    def test_position_at_empty_raises(self):
        with pytest.raises(ValueError):
            PLRSeries().position_at(0.0)

    def test_segment_index_at(self, regular_series):
        assert regular_series.segment_index_at(0.1) == 0
        assert regular_series.segment_index_at(1e9) == (
            regular_series.n_segments - 1
        )

    def test_from_arrays_roundtrip(self, regular_series):
        rebuilt = PLRSeries.from_arrays(
            regular_series.times,
            regular_series.positions,
            regular_series.states,
        )
        np.testing.assert_allclose(rebuilt.times, regular_series.times)
        np.testing.assert_array_equal(rebuilt.states, regular_series.states)

    def test_from_arrays_misaligned_raises(self):
        with pytest.raises(ValueError):
            PLRSeries.from_arrays([0.0, 1.0], [[0.0]], [EX, EOE])

    def test_iteration_yields_vertices(self, regular_series):
        vertices = list(regular_series)
        assert len(vertices) == len(regular_series)
        assert all(isinstance(v, Vertex) for v in vertices)


class TestSubsequence:
    def test_window_bounds_validated(self, regular_series):
        with pytest.raises(ValueError):
            regular_series.subsequence(3, 3)
        with pytest.raises(ValueError):
            regular_series.subsequence(0, len(regular_series) + 1)

    def test_counts(self, regular_series):
        sub = regular_series.subsequence(0, 4)
        assert sub.n_vertices == 4
        assert sub.n_segments == 3
        assert len(sub) == 4

    def test_state_signature(self, regular_series):
        sub = regular_series.subsequence(0, 4)
        assert sub.state_signature == (int(IN), int(EX), int(EOE))

    def test_signature_cached_and_hashable(self, regular_series):
        sub = regular_series.subsequence(0, 4)
        assert sub.state_signature is sub.state_signature
        hash(sub.state_signature)

    def test_feature_arrays(self, regular_series):
        sub = regular_series.subsequence(0, 4)
        np.testing.assert_allclose(sub.amplitudes, [10.0, 10.0, 0.0])
        np.testing.assert_allclose(sub.durations, [1.0, 1.0, 1.0])

    def test_first_last_vertex(self, regular_series):
        sub = regular_series.subsequence(1, 5)
        assert sub.first_vertex.time == regular_series[1].time
        assert sub.last_vertex.time == regular_series[4].time

    def test_vertex_indexing(self, regular_series):
        sub = regular_series.subsequence(1, 5)
        assert sub.vertex(-1).time == sub.last_vertex.time
        with pytest.raises(IndexError):
            sub.vertex(4)

    def test_cycle_count(self, regular_series):
        whole = regular_series.subsequence(0, len(regular_series))
        assert whole.cycle_count(anchor=IN) == 4

    def test_suffix(self, regular_series):
        sub = regular_series.suffix(5)
        assert sub.stop == len(regular_series)
        assert sub.n_vertices == 5

    def test_suffix_clamps_to_length(self, regular_series):
        sub = regular_series.suffix(10_000)
        assert sub.n_vertices == len(regular_series)

    def test_subsequences_enumeration(self, regular_series):
        subs = list(regular_series.subsequences(4))
        assert len(subs) == len(regular_series) - 3
        assert subs[0].start == 0
        assert subs[-1].stop == len(regular_series)


class TestCycleConversions:
    def test_roundtrip(self):
        for c in (1, 2, 5, 9):
            assert vertices_to_cycles(cycles_to_vertices(c)) == c

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_vertices(-1)


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        min_size=2,
        max_size=40,
        unique=True,
    ),
    amp=st.floats(min_value=0.1, max_value=100.0),
)
def test_property_series_interpolation_within_hull(times, amp):
    """position_at never leaves the convex hull of vertex positions."""
    times = sorted(times)
    rng = np.random.default_rng(0)
    positions = rng.uniform(-amp, amp, len(times))
    states = [BreathingState(int(i) % 4) for i in range(len(times))]
    series = PLRSeries.from_arrays(times, positions, states)
    lo, hi = positions.min(), positions.max()
    for t in np.linspace(times[0] - 1, times[-1] + 1, 17):
        value = series.position_at(float(t))[0]
        assert lo - 1e-9 <= value <= hi + 1e-9
