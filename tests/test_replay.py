"""Integration tests for the replay harness, cohort builder and tuner."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    CohortConfig,
    build_cohort,
    calibrate_threshold,
    evaluate_cohort,
    pooled_match_distances,
)
from repro.analysis.replay import (
    ReplayConfig,
    ReplayResult,
    replay_session,
    replay_session_baseline,
)
from repro.baselines.predictors import LastValuePredictor
from repro.core.similarity import SimilarityParams
from repro.core.tuning import tune_similarity_params


class TestCohort:
    def test_structure(self, small_cohort):
        assert small_cohort.db.n_patients == 4
        assert small_cohort.db.n_streams == 8
        assert set(small_cohort.live_streams) == set(
            small_cohort.patient_ids
        )

    def test_profile_lookup(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        assert small_cohort.profile(pid).patient_id == pid
        with pytest.raises(KeyError):
            small_cohort.profile("nope")

    def test_reproducible(self):
        config = CohortConfig(
            n_patients=2, sessions_per_patient=1,
            session_duration=30.0, live_duration=20.0, seed=9,
        )
        a = build_cohort(config)
        b = build_cohort(config)
        assert a.db.n_vertices == b.db.n_vertices


class TestReplaySession:
    def test_basic_run(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        result = replay_session(
            small_cohort.db, small_cohort.live_streams[pid]
        )
        assert result.n_opportunities > 0
        assert 0.0 <= result.coverage <= 1.0
        errors = result.errors()
        assert errors and all(np.isfinite(e) for e in errors)
        # Temporary live stream removed afterwards.
        assert result.stream_id not in small_cohort.db

    def test_keep_stream(self, small_cohort):
        pid = small_cohort.patient_ids[1]
        result = replay_session(
            small_cohort.db,
            small_cohort.live_streams[pid],
            session_id="KEPT",
            keep_stream=True,
        )
        assert result.stream_id in small_cohort.db
        small_cohort.db.remove_stream(result.stream_id)

    def test_per_horizon_errors(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        config = ReplayConfig(horizons=(0.1, 0.3))
        result = replay_session(
            small_cohort.db, small_cohort.live_streams[pid], config
        )
        assert set(result.errors_by_horizon) == {0.1, 0.3}
        assert result.summary(0.1).n > 0

    def test_fixed_query_mode(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        result = replay_session(
            small_cohort.db,
            small_cohort.live_streams[pid],
            ReplayConfig(fixed_cycles=2),
        )
        assert set(result.query_lengths) == {7}

    def test_merge(self, small_cohort):
        results = [
            replay_session(small_cohort.db, small_cohort.live_streams[pid])
            for pid in small_cohort.patient_ids[:2]
        ]
        merged = ReplayResult.merge(results)
        assert merged.n_predictions == sum(r.n_predictions for r in results)
        assert len(merged.errors()) == sum(len(r.errors()) for r in results)


class TestEvaluateCohort:
    def test_subset_and_restriction(self, small_cohort):
        ids = small_cohort.patient_ids[:2]
        restrict = {pid: (pid,) for pid in ids}
        result = evaluate_cohort(
            small_cohort, patient_ids=ids, restrict_map=restrict
        )
        assert result.n_opportunities > 0


class TestBaselineReplay:
    def test_last_value(self, small_cohort):
        pid = small_cohort.patient_ids[0]
        result = replay_session_baseline(
            small_cohort.live_streams[pid], LastValuePredictor()
        )
        assert result.coverage == pytest.approx(1.0)
        assert result.summary().mean > 0.0


class TestCalibration:
    def test_pooled_distances_nonempty(self, small_cohort):
        distances = pooled_match_distances(
            small_cohort, SimilarityParams(), n_queries=30
        )
        assert len(distances) > 50
        assert np.all(distances >= 0)

    def test_calibrated_threshold_matches_quantile(self, small_cohort):
        threshold = calibrate_threshold(
            small_cohort, SimilarityParams(), 0.25, n_queries=30
        )
        distances = pooled_match_distances(
            small_cohort, SimilarityParams(), n_queries=30
        )
        fraction = float((distances <= threshold).mean())
        assert fraction == pytest.approx(0.25, abs=0.05)

    def test_invalid_acceptance(self, small_cohort):
        with pytest.raises(ValueError):
            calibrate_threshold(small_cohort, SimilarityParams(), 0.0)


class TestTuning:
    def test_coordinate_descent_improves_or_keeps(self, small_cohort):
        result = tune_similarity_params(
            small_cohort,
            {"frequency_weight": (0.25, 1.0)},
            patient_ids=small_cohort.patient_ids[:1],
        )
        assert result.score <= min(t.score for t in result.trials) + 1e-12
        assert result.best_value("frequency_weight") in (0.25, 1.0)
        assert len(result.trials) == 2

    def test_unknown_parameter_rejected(self, small_cohort):
        with pytest.raises(ValueError):
            tune_similarity_params(small_cohort, {"bogus": (1,)})
