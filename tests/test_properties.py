"""Cross-module property-based tests (hypothesis fuzzing)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import SubsequenceMatcher
from repro.core.model import BreathingState, PLRSeries, Vertex
from repro.core.segmentation import OnlineSegmenter
from repro.core.similarity import SimilarityParams, subsequence_distance
from repro.database.store import MotionDatabase

from conftest import EOE, EX, IN
from tests_support import clean_cycles


def random_plr(rng, n_vertices, irregular_rate=0.1):
    """A random FSA-plausible PLR series."""
    series = PLRSeries()
    t = 0.0
    order = [IN, EX, EOE]
    position = 0.0
    cursor = int(rng.integers(0, 3))
    for _ in range(n_vertices):
        if rng.random() < irregular_rate:
            state = BreathingState.IRR
        else:
            state = order[cursor % 3]
            cursor += 1
        series.append(Vertex(t, (position,), state))
        t += float(rng.uniform(0.4, 2.0))
        if state is IN:
            position += float(rng.uniform(3.0, 15.0))
        elif state is EX:
            position -= float(rng.uniform(3.0, 15.0))
        else:
            position += float(rng.uniform(-0.5, 0.5))
    return series


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_streams=st.integers(min_value=1, max_value=4),
    query_len=st.integers(min_value=3, max_value=8),
)
def test_index_matches_linear_scan_on_random_series(
    seed, n_streams, query_len
):
    """The signature index and the linear scan always agree exactly."""
    rng = np.random.default_rng(seed)
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_patient("PB")
    for k in range(n_streams):
        pid = "PA" if k % 2 == 0 else "PB"
        db.add_stream(
            pid, f"S{k:02d}", series=random_plr(rng, int(rng.integers(12, 40)))
        )
    sid = db.stream_ids[0]
    series = db.stream(sid).series
    if len(series) <= query_len:
        return
    start = int(rng.integers(0, len(series) - query_len))
    query = series.subsequence(start, start + query_len)

    indexed = SubsequenceMatcher(db, use_index=True)
    scanning = SubsequenceMatcher(db, use_index=False)
    a = indexed.find_matches(query, sid, threshold=math.inf)
    b = scanning.find_matches(query, sid, threshold=math.inf)
    assert [(m.stream_id, m.start) for m in a] == [
        (m.stream_id, m.start) for m in b
    ]
    np.testing.assert_allclose(
        [m.distance for m in a], [m.distance for m in b]
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    chunk=st.integers(min_value=1, max_value=97),
)
def test_segmenter_invariant_to_chunking(seed, chunk):
    """Feeding a stream in arbitrary chunk sizes never changes the PLR."""
    rng = np.random.default_rng(seed)
    t, x = clean_cycles(n_cycles=4, period=float(rng.uniform(3.0, 5.0)))
    x = x + rng.normal(0, 0.1, len(x))

    whole = OnlineSegmenter()
    whole.extend(t, x)
    whole.finish()

    chunked = OnlineSegmenter()
    for i in range(0, len(t), chunk):
        chunked.extend(t[i : i + chunk], x[i : i + chunk])
    chunked.finish()

    np.testing.assert_allclose(chunked.series.times, whole.series.times)
    np.testing.assert_array_equal(chunked.series.states, whole.series.states)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_database_persistence_roundtrip_random(seed, tmp_path_factory):
    """Save/load preserves every vertex of random databases exactly."""
    rng = np.random.default_rng(seed)
    db = MotionDatabase()
    db.add_patient("PA")
    for k in range(int(rng.integers(1, 4))):
        db.add_stream(
            "PA", f"S{k:02d}", series=random_plr(rng, int(rng.integers(5, 30)))
        )
    path = tmp_path_factory.mktemp("dbs") / f"db-{seed}.json"
    db.save(path)
    loaded = MotionDatabase.load(path)
    for sid in db.stream_ids:
        original = db.stream(sid).series
        restored = loaded.stream(sid).series
        np.testing.assert_allclose(restored.times, original.times)
        np.testing.assert_allclose(restored.positions, original.positions)
        np.testing.assert_array_equal(restored.states, original.states)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=3, max_value=9),
)
def test_distance_is_quasi_metric_on_same_signature(seed, length):
    """Identity, non-negativity and symmetry on random matched windows."""
    rng = np.random.default_rng(seed)
    base = random_plr(rng, 30, irregular_rate=0.0)
    # Two windows with the same signature: same phase offset (period 3).
    starts = [s for s in range(0, 30 - length, 3)]
    if len(starts) < 2:
        return
    a = base.subsequence(starts[0], starts[0] + length)
    b = base.subsequence(starts[1], starts[1] + length)
    if a.state_signature != b.state_signature:
        return
    params = SimilarityParams(use_source_weights=False)
    d_ab = subsequence_distance(a, b, params)
    d_ba = subsequence_distance(b, a, params)
    assert d_ab >= 0.0
    assert d_ab == pytest.approx(d_ba)
    assert subsequence_distance(a, a, params) == pytest.approx(0.0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_prediction_within_recent_motion_envelope(seed):
    """Predicted positions stay inside the envelope of historical motion."""
    rng = np.random.default_rng(seed)
    db = MotionDatabase()
    db.add_patient("PA")
    hist = random_plr(rng, 40, irregular_rate=0.0)
    db.add_stream("PA", "HIST", series=hist)
    live = random_plr(np.random.default_rng(seed + 1), 15, irregular_rate=0.0)
    db.add_stream("PA", "LIVE", series=live)
    from repro.core.prediction import OnlinePredictor

    matcher = SubsequenceMatcher(db)
    predictor = OnlinePredictor(db, matcher, min_matches=1)
    query = live.suffix(7)
    prediction = predictor.predict(
        query, "PA/LIVE", horizon=0.3, threshold=math.inf
    )
    if prediction is None:
        return
    # Envelope: live position range widened by the largest historical step.
    lo = live.positions[:, 0].min() - hist.amplitudes.max()
    hi = live.positions[:, 0].max() + hist.amplitudes.max()
    assert lo <= prediction.primary <= hi