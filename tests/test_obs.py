"""Telemetry-verified tests for the observability layer.

Unit coverage of the registry / tracer / facade / expositions, plus the
two contracts the tentpole rests on:

* **oracle-exact counts** — the matcher's candidate counters are checked
  against naive bookkeeping derived from the frozen reference
  implementations in :mod:`repro.testing.oracle`, not against the
  engine's own numbers;
* **enabled/disabled identity** — running a full online session with
  telemetry on produces byte-identical matches and predictions to
  running it with telemetry off.
"""

import copy
import json
import math

import numpy as np
import pytest

from repro.core.matching import SubsequenceMatcher
from repro.core.model import BreathingState
from repro.core.online import OnlineAnalysisSession, OnlineSessionConfig
from repro.core.segmentation import OnlineSegmenter
from repro.database.store import MotionDatabase
from repro.events import EventBus
from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    TELEMETRY_ENV_VAR,
    Telemetry,
    Tracer,
    default_telemetry,
    render_text,
    snapshot_payload,
)
from repro.testing.oracle import reference_matches

from conftest import make_series
from tests_support import clean_cycles

LATENCY = 0.2


# -- instruments ---------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram("h", bounds=(1.0, 2.0, 5.0))
        for v in (1.0, 1.5, 2.0, 7.0):  # on-bound values land *in* the bucket
            h.observe(v)
        assert h.counts == [1, 2, 0, 1]
        assert h.count == 4
        assert h.total == 11.5
        assert h.vmin == 1.0 and h.vmax == 7.0

    def test_bounds_must_be_increasing_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_quantile_reports_bucket_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 0.5, 1.5, 4.0):
            h.observe(v)
        s = reg.snapshot().histograms["h"]
        assert s.quantile(0.0) == 1.0
        assert s.quantile(0.5) == 1.0
        assert s.quantile(0.75) == 2.0
        assert s.quantile(1.0) == 5.0
        with pytest.raises(ValueError):
            s.quantile(1.5)

    def test_overflow_bucket_quantile_is_exact_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0,))
        h.observe(3.0)
        h.observe(9.0)
        s = reg.snapshot().histograms["h"]
        assert s.quantile(1.0) == 9.0

    def test_empty_snapshot_stats_are_nan(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        s = reg.snapshot().histograms["h"]
        assert math.isnan(s.mean) and math.isnan(s.quantile(0.5))

    def test_merge_requires_identical_bounds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0))
        b.histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.snapshot().histograms["h"].merge(b.snapshot().histograms["h"])

    def test_merge_is_bucket_wise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        ha = a.histogram("h", bounds=(1.0, 2.0))
        hb = b.histogram("h", bounds=(1.0, 2.0))
        ha.observe(0.5)
        hb.observe(1.5)
        hb.observe(9.0)
        merged = a.snapshot().histograms["h"].merge(b.snapshot().histograms["h"])
        assert merged.counts == (1, 1, 1)
        assert merged.count == 3
        assert merged.total == 11.0
        assert merged.vmin == 0.5 and merged.vmax == 9.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.histogram("a")

    def test_histogram_bounds_collision_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_one_shot_conveniences(self):
        reg = MetricsRegistry()
        reg.inc("c", 2.0)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 0.01)
        snap = reg.snapshot()
        assert snap.counters["c"] == 2.0
        assert snap.gauges["g"] == 7.0
        assert snap.histograms["h"].count == 1

    def test_snapshot_is_immutable_copy(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        snap = reg.snapshot()
        c.inc(10)
        assert snap.counters["c"] == 1.0  # value frozen at snapshot time
        with pytest.raises(TypeError):
            snap.counters["c"] = 99.0

    def test_snapshot_merge_sums(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("shared", 1.0)
        b.inc("shared", 2.0)
        b.inc("only_b", 5.0)
        a.set_gauge("g", 3.0)
        b.set_gauge("g", 4.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters == {"shared": 3.0, "only_b": 5.0}
        assert merged.gauges == {"g": 7.0}

    def test_empty_is_merge_identity(self):
        reg = MetricsRegistry()
        reg.inc("c", 3.0)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        left = RegistrySnapshot.empty().merge(snap)
        right = snap.merge(RegistrySnapshot.empty())
        assert left.counters == snap.counters == right.counters
        assert left.histograms["h"].counts == snap.histograms["h"].counts

    def test_counter_getter_defaults_to_zero(self):
        assert RegistrySnapshot.empty().counter("missing") == 0.0


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_nesting_records_parent(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current == "outer"
            with tracer.span("inner"):
                assert tracer.current == "inner"
        with tracer.span("outer"):
            pass
        stats = {(s.name, s.parent): s for s in tracer.snapshot()}
        assert stats[("outer", None)].count == 2
        assert stats[("inner", "outer")].count == 1

    def test_span_times_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        (s,) = tracer.snapshot()
        assert s.count == 3
        assert 0.0 <= s.max_wall_s <= s.wall_s

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current is None
        (s,) = tracer.snapshot()
        assert s.count == 1  # the failed span is still recorded

    def test_snapshot_order_is_deterministic(self):
        tracer = Tracer()
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        names = [s.name for s in tracer.snapshot()]
        assert names == sorted(names)


# -- facade --------------------------------------------------------------------


class TestTelemetry:
    def test_scoped_children_are_cached(self):
        t = Telemetry()
        a = t.scoped("PA/LIVE")
        assert t.scoped("PA/LIVE") is a
        assert a.registry is not t.registry
        assert a.tracer is t.tracer  # spans nest across the tree
        assert t.scope_names == ("PA/LIVE",)

    def test_snapshot_carries_scopes_and_merged(self):
        t = Telemetry()
        t.inc("service.ticks", 2.0)
        t.scoped("A").inc("session.samples", 10.0)
        t.scoped("B").inc("session.samples", 5.0)
        snap = t.snapshot(time=1.5)
        assert snap.time == 1.5
        assert set(snap.scopes) == {"A", "B"}
        assert snap.merged.counter("session.samples") == 15.0
        assert snap.merged.counter("service.ticks") == 2.0

    def test_publish_emits_bus_event(self):
        bus = EventBus()
        t = Telemetry(events=bus)
        got = []
        bus.subscribe("telemetry_snapshot", got.append)
        snap = t.publish(now=3.0)
        assert len(got) == 1 and got[0]["snapshot"] is snap

    def test_maybe_publish_respects_interval(self):
        bus = EventBus()
        t = Telemetry(events=bus, snapshot_interval=5.0)
        got = []
        bus.subscribe("telemetry_snapshot", got.append)
        assert t.maybe_publish(0.0) is not None  # first call: baseline
        assert t.maybe_publish(4.9) is None
        assert t.maybe_publish(5.0) is not None
        assert len(got) == 2

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            Telemetry(snapshot_interval=0.0)

    def test_default_telemetry_env_gate(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        assert default_telemetry() is None
        for off in ("", "0", "no", "off", "false"):
            monkeypatch.setenv(TELEMETRY_ENV_VAR, off)
            assert default_telemetry() is None
        for on in ("1", "true", "YES", " on "):
            monkeypatch.setenv(TELEMETRY_ENV_VAR, on)
            t = default_telemetry()
            assert isinstance(t, Telemetry)


# -- exposition ----------------------------------------------------------------


def _sample_snapshot():
    t = Telemetry()
    t.inc("matcher.queries", 3.0)
    t.set_gauge("service.live_sessions", 2.0)
    t.observe("matcher.find_s", 0.002)
    t.observe("service.tick_samples", 3.0, bounds=DEFAULT_COUNT_BUCKETS)
    t.registry.histogram("empty_s")
    t.scoped("PA/LIVE").inc("session.samples", 7.0)
    with t.span("service.tick"):
        with t.span("matcher.find"):
            pass
    return t.snapshot(time=12.0)


class TestExposition:
    def test_payload_is_json_serialisable(self):
        payload = snapshot_payload(_sample_snapshot())
        text = json.dumps(payload)  # must not raise (no inf/nan leaks)
        again = json.loads(text)
        assert again["format"] == "repro.telemetry/v1"
        assert again["registry"]["counters"]["matcher.queries"] == 3.0
        assert again["scopes"]["PA/LIVE"]["counters"]["session.samples"] == 7.0
        assert again["merged"]["counters"]["session.samples"] == 7.0
        h = again["registry"]["histograms"]["matcher.find_s"]
        assert h["count"] == 1 and h["mean"] == pytest.approx(0.002)
        empty = again["registry"]["histograms"]["empty_s"]
        assert empty["mean"] is None and empty["min"] is None

    def test_payload_span_tree(self):
        payload = snapshot_payload(_sample_snapshot())
        spans = {(s["name"], s["parent"]) for s in payload["spans"]}
        assert ("service.tick", None) in spans
        assert ("matcher.find", "service.tick") in spans

    def test_render_text_mentions_every_instrument(self):
        text = render_text(_sample_snapshot())
        for needle in (
            "matcher.queries",
            "service.live_sessions",
            "matcher.find_s",
            "(empty)",
            "[scope PA/LIVE]",
            "session.samples",
            "matcher.find < service.tick",
            "t=12.000s",
        ):
            assert needle in text, needle

    def test_render_text_units(self):
        text = render_text(_sample_snapshot())
        # Latency histograms (*_s) render with time units, size
        # histograms as plain numbers.
        find_line = next(l for l in text.splitlines() if "matcher.find_s" in l)
        assert "ms" in find_line or "us" in find_line
        tick_line = next(
            l for l in text.splitlines() if "service.tick_samples" in l
        )
        assert "mean=3" in tick_line and "3s" not in tick_line

    def test_render_text_ad_hoc_time(self):
        assert "ad-hoc" in render_text(Telemetry().snapshot())


# -- oracle-exact pipeline counters --------------------------------------------


def _census(db, query, query_stream_id):
    """Naive bookkeeping mirroring the reference matcher's walk.

    Returns (generated, admissible): same-signature windows in the
    database, and those surviving the own-stream overlap exclusion.
    """
    m = query.n_vertices
    signature = query.state_signature
    generated = admissible = 0
    for record in db.iter_streams():
        series = record.series
        for start in range(len(series) - m + 1):
            window = series.subsequence(start, start + m)
            if window.state_signature != signature:
                continue
            generated += 1
            if (
                record.stream_id == query_stream_id
                and start < query.stop
                and start + m > query.start
            ):
                continue
            admissible += 1
    return generated, admissible


@pytest.fixture
def census_db():
    db = MotionDatabase()
    db.add_patient("PA")
    db.add_patient("PB")
    db.add_stream("PA", "S0", series=make_series(cycles=4))
    db.add_stream("PA", "S1", series=make_series(cycles=3, amplitude=12.0))
    db.add_stream(
        "PB", "S0", series=make_series(cycles=4, amplitude=8.0, period=2.5)
    )
    return db


class TestOracleExactCounts:
    THRESHOLD = 2.0

    def _run(self, db, use_index=True, max_matches=None, threshold=None):
        telemetry = Telemetry()
        matcher = SubsequenceMatcher(
            db, use_index=use_index, telemetry=telemetry
        )
        series = db.stream("PA/S0").series
        query = series.subsequence(3, 7)
        matches = matcher.find_matches(
            query,
            "PA/S0",
            threshold=self.THRESHOLD if threshold is None else threshold,
            max_matches=max_matches,
        )
        return query, matches, telemetry.registry.snapshot()

    @pytest.mark.parametrize("use_index", [True, False])
    def test_counters_match_naive_bookkeeping(self, census_db, use_index):
        query, matches, snap = self._run(census_db, use_index=use_index)
        generated, admissible = _census(census_db, query, "PA/S0")
        ref = reference_matches(
            census_db, query, "PA/S0", threshold=self.THRESHOLD
        )
        assert ref, "vacuous census fixture"
        assert snap.counter("matcher.queries") == 1
        assert snap.counter("matcher.candidates_generated") == generated
        assert snap.counter("matcher.candidates_pruned") == (
            generated - admissible
        )
        assert snap.counter("matcher.candidates_ranked") == len(ref)
        assert snap.counter("matcher.matches_returned") == len(matches)
        assert len(matches) == len(ref)
        assert [(m.stream_id, m.start) for m in matches] == [
            (m.stream_id, m.start) for m in ref
        ]

    def test_truncation_counts_ranked_not_returned(self, census_db):
        query, matches, snap = self._run(
            census_db, max_matches=2, threshold=math.inf
        )
        ref = reference_matches(
            census_db, query, "PA/S0", threshold=math.inf
        )
        assert len(ref) > 2, "vacuous truncation fixture"
        assert len(matches) == 2
        assert snap.counter("matcher.candidates_ranked") == len(ref)
        assert snap.counter("matcher.matches_returned") == 2

    def test_find_span_and_latency_recorded(self, census_db):
        _, _, snap = self._run(census_db)
        assert snap.histograms["matcher.find_s"].count == 1


class TestIndexCounters:
    def test_lookup_catchup_and_hit_miss(self, census_db):
        telemetry = Telemetry()
        matcher = SubsequenceMatcher(census_db, telemetry=telemetry)
        series = census_db.stream("PA/S0").series
        query = series.subsequence(3, 7)

        matcher.find_matches(query, "PA/S0", threshold=math.inf)
        snap = telemetry.registry.snapshot()
        total_windows = sum(
            len(r.series) - query.n_vertices + 1
            for r in census_db.iter_streams()
        )
        assert snap.counter("index.lookups") == 1
        assert snap.counter("index.hits") == 1
        assert snap.counter("index.windows_indexed") == total_windows
        assert snap.histograms["index.catch_up_windows"].count >= 1
        assert snap.histograms["index.catch_up_s"].count >= 1
        assert snap.gauges["index.postings"] > 0

        # Second identical lookup: no new windows, one more hit.
        matcher.find_matches(query, "PA/S0", threshold=math.inf)
        snap = telemetry.registry.snapshot()
        assert snap.counter("index.lookups") == 2
        assert snap.counter("index.hits") == 2
        assert snap.counter("index.windows_indexed") == total_windows

    def test_unknown_signature_is_a_miss(self, census_db):
        from repro.core.model import PLRSeries, Vertex

        telemetry = Telemetry()
        matcher = SubsequenceMatcher(census_db, telemetry=telemetry)
        # An all-IRR signature never occurs in the census streams.
        odd = PLRSeries()
        for k in range(4):
            odd.append(Vertex(float(k), (0.0,), BreathingState.IRR))
        query = odd.subsequence(0, 4)
        assert matcher.find_matches(query, None, threshold=math.inf) == []
        snap = telemetry.registry.snapshot()
        assert snap.counter("index.misses") == 1
        assert snap.counter("index.hits") == 0


# -- segmenter counters --------------------------------------------------------


class TestSegmenterCounters:
    def test_counts_match_series_bookkeeping(self):
        t, x = clean_cycles(n_cycles=6)
        amends = []
        telemetry = Telemetry()
        seg = OnlineSegmenter(on_amend=amends.append, telemetry=telemetry)
        for ti, xi in zip(t, x):
            seg.add_point(float(ti), float(xi))
        seg.finish()
        snap = telemetry.registry.snapshot()
        assert snap.counter("segmenter.points") == len(t)
        assert snap.counter("segmenter.vertices") == len(seg.series)
        assert snap.counter("segmenter.amends") == len(amends)
        state_total = sum(
            snap.counter(f"segmenter.state.{s.name.lower()}")
            for s in BreathingState
        )
        assert state_total == snap.counter("segmenter.vertices")
        assert len(seg.series) > 0  # non-vacuous

    def test_disabled_segmenter_has_no_registry_footprint(self):
        t, x = clean_cycles(n_cycles=2)
        seg = OnlineSegmenter()  # telemetry=None
        for ti, xi in zip(t, x):
            seg.add_point(float(ti), float(xi))
        assert seg._t is None


# -- database write counters ---------------------------------------------------


class TestDatabaseCounters:
    def test_attempted_write_counters(self):
        telemetry = Telemetry()
        db = MotionDatabase(telemetry=telemetry)
        db.add_patient("PA")
        db.add_stream("PA", "LIVE")
        vertices = list(make_series(1))[:3]
        db.commit_vertices("PA/LIVE", iter(vertices))  # iterator input
        db.commit_vertices("PA/LIVE", vertices[:2])
        db.amend_vertex("PA/LIVE", vertices[0])
        snap = telemetry.registry.snapshot()
        assert snap.counter("backend.commit_batches") == 2
        assert snap.counter("backend.committed_vertices") == 5
        assert snap.counter("backend.amended_vertices") == 1

    def test_telemetry_settable_after_construction(self):
        db = MotionDatabase()
        assert db.telemetry is None
        telemetry = Telemetry()
        db.telemetry = telemetry
        db.add_patient("PA")
        db.add_stream("PA", "LIVE")
        db.commit_vertices("PA/LIVE", list(make_series(1))[:2])
        assert telemetry.registry.snapshot().counter(
            "backend.commit_batches"
        ) == 1


# -- enabled vs. disabled byte-identity ----------------------------------------


def _session_trace(db, raw, telemetry):
    session = OnlineAnalysisSession(
        db,
        raw.patient_id,
        "OBS",
        config=OnlineSessionConfig(),
        telemetry=telemetry,
    )
    predictions = []
    for t, position in raw.iter_points():
        session.observe(t, position)
        predictions.append(session.predict_ahead(LATENCY))
    matches = [(m.stream_id, m.start, m.distance) for m in session.matches]
    session.finish(keep_stream=False)
    return predictions, matches


class TestEnabledDisabledIdentity:
    @pytest.fixture(scope="class")
    def identity_traces(self, small_cohort):
        profile = small_cohort.profiles[0]
        from repro.signals.respiratory import RespiratorySimulator, SessionConfig

        raw = RespiratorySimulator(
            profile, SessionConfig(duration=20.0)
        ).generate_session(9, seed=41)
        telemetry = Telemetry()
        enabled = _session_trace(
            copy.deepcopy(small_cohort.db), raw, telemetry
        )
        # Force the disabled leg even when the suite runs under
        # REPRO_TELEMETRY=1 (the CI observability job).
        with pytest.MonkeyPatch.context() as mp:
            mp.delenv(TELEMETRY_ENV_VAR, raising=False)
            disabled = _session_trace(
                copy.deepcopy(small_cohort.db), raw, None
            )
        return raw, enabled, disabled, telemetry

    def test_predictions_byte_identical(self, identity_traces):
        raw, enabled, disabled, _ = identity_traces
        assert len(enabled[0]) == len(disabled[0])
        served = 0
        for a, b in zip(enabled[0], disabled[0]):
            if a is None or b is None:
                assert a is None and b is None
            else:
                np.testing.assert_array_equal(a, b)  # same bytes, not close
                served += 1
        assert served > 0  # non-vacuous

    def test_matches_byte_identical(self, identity_traces):
        _, enabled, disabled, _ = identity_traces
        assert enabled[1] == disabled[1]
        assert enabled[1], "session never matched"

    def test_enabled_run_actually_counted(self, identity_traces):
        raw, _, _, telemetry = identity_traces
        snap = telemetry.registry.snapshot()
        assert snap.counter("session.samples") == len(raw.times)
        assert snap.counter("session.predictions_served") > 0
        assert snap.histograms["session.observe_s"].count == len(raw.times)


# -- cross-process registry decode + fleet merge -------------------------------


class TestCrossProcessRegistries:
    """Shard workers report registries as JSON payloads; the coordinator
    decodes them with :func:`registry_snapshot_from_payload` and folds
    shards into one fleet view.  Counters and histogram buckets are
    exact (integer counts, sums of repr-round-tripped floats), so the
    merged fleet numbers must equal a single-process registry's."""

    def test_payload_decode_inverts_encoding(self):
        from repro.obs.exposition import registry_snapshot_from_payload

        merged = _sample_snapshot().merged
        wire = json.loads(json.dumps(snapshot_payload(_sample_snapshot())))
        decoded = registry_snapshot_from_payload(wire["merged"])
        assert decoded.counters == merged.counters
        assert decoded.gauges == merged.gauges
        assert set(decoded.histograms) == set(merged.histograms)
        for name, hist in merged.histograms.items():
            got = decoded.histograms[name]
            assert got.bounds == hist.bounds
            assert got.counts == hist.counts
            assert got.total == hist.total and got.count == hist.count
            # Empty histograms restore the +-inf merge identities.
            assert got.vmin == hist.vmin and got.vmax == hist.vmax

    def test_fleet_merge_over_wire_is_exact(self):
        from repro.obs.exposition import registry_snapshot_from_payload

        # Three "workers" with known per-shard counts.
        workers = []
        for shard, n in enumerate((3, 5, 7)):
            telemetry = Telemetry()
            telemetry.inc("shard.rpcs", float(n))
            telemetry.inc(f"shard.only_{shard}", 1.0)
            for k in range(n):
                telemetry.observe("service.tick_s", 0.001 * (k + 1))
            workers.append(telemetry.snapshot())

        live = RegistrySnapshot.empty()
        over_wire = RegistrySnapshot.empty()
        for snap in workers:
            live = live.merge(snap.merged)
            payload = json.loads(json.dumps(snapshot_payload(snap)))
            over_wire = over_wire.merge(
                registry_snapshot_from_payload(payload["merged"])
            )

        # Exact-count oracle: the fleet view equals the arithmetic sum.
        assert over_wire.counter("shard.rpcs") == 3 + 5 + 7
        for shard in range(3):
            assert over_wire.counter(f"shard.only_{shard}") == 1.0
        hist = over_wire.histograms["service.tick_s"]
        assert hist.count == 3 + 5 + 7
        # And the wire adds nothing: identical to merging live snapshots.
        assert over_wire.counters == live.counters
        assert over_wire.gauges == live.gauges
        for name, reference in live.histograms.items():
            got = over_wire.histograms[name]
            assert got.counts == reference.counts
            assert got.total == reference.total
            assert got.vmin == reference.vmin and got.vmax == reference.vmax
