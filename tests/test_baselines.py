"""Tests for the comparison baselines (Euclidean, DTW, LCSS, predictors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dtw import dtw_distance, dtw_path
from repro.baselines.euclidean import (
    EuclideanConfig,
    euclidean_distance,
    euclidean_subsequence_distance,
    resample,
)
from repro.baselines.lcss import lcss_distance, lcss_length, lcss_similarity
from repro.baselines.predictors import (
    LastValuePredictor,
    LinearExtrapolationPredictor,
    SinusoidalPredictor,
)
from repro.core.model import PLRSeries, Vertex

from conftest import EOE, EX, IN, make_series


class TestEuclidean:
    def test_resample_shape_and_endpoints(self, regular_series):
        sub = regular_series.subsequence(0, 7)
        values = resample(sub, 16)
        assert values.shape == (16, 1)
        np.testing.assert_allclose(values[0], sub.positions[0])
        np.testing.assert_allclose(values[-1], sub.positions[-1])

    def test_distance_basics(self):
        a = np.zeros((8, 1))
        b = np.ones((8, 1))
        assert euclidean_distance(a, a) == 0.0
        assert euclidean_distance(a, b) == pytest.approx(np.sqrt(8))

    def test_distance_weighted(self):
        a = np.zeros((4, 1))
        b = np.ones((4, 1))
        w = np.array([0.0, 0.0, 1.0, 1.0])
        assert euclidean_distance(a, b, w) == pytest.approx(np.sqrt(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros((4, 1)), np.zeros((5, 1)))

    def test_subsequence_distance_identity(self, regular_series):
        sub = regular_series.subsequence(0, 7)
        assert euclidean_subsequence_distance(sub, sub) == pytest.approx(0.0)

    def test_offset_sensitivity_and_invariance(self):
        base = make_series(cycles=2, baseline=0.0)
        shifted = make_series(cycles=2, baseline=10.0)
        a = base.subsequence(0, 7)
        b = shifted.subsequence(0, 7)
        plain = euclidean_subsequence_distance(a, b)
        invariant = euclidean_subsequence_distance(
            a, b, EuclideanConfig(offset_invariant=True)
        )
        assert plain > 1.0  # the classic Euclidean weakness
        assert invariant == pytest.approx(0.0, abs=1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EuclideanConfig(n_points=1)
        with pytest.raises(ValueError):
            EuclideanConfig(recency_base=0.0)


class TestDTW:
    def test_identity_zero(self):
        x = np.sin(np.linspace(0, 6, 50))
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_warping_beats_euclidean_on_shift(self):
        t = np.linspace(0, 6, 60)
        a = np.sin(t)
        b = np.sin(t - 0.4)
        d_dtw = dtw_distance(a, b)
        d_euc = float(np.linalg.norm(a - b))
        assert d_dtw < d_euc

    def test_band_constrains(self):
        t = np.linspace(0, 6, 40)
        a = np.sin(t)
        b = np.sin(t - 1.0)
        assert dtw_distance(a, b, window=2) >= dtw_distance(a, b)

    def test_path_endpoints_and_monotone(self):
        a = np.array([0.0, 1.0, 2.0, 1.0])
        b = np.array([0.0, 2.0, 1.0])
        path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1 and 0 <= j2 - j1 <= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))


class TestLCSS:
    def test_identical(self):
        x = np.array([1.0, 2.0, 3.0])
        assert lcss_length(x, x, epsilon=0.1) == 3
        assert lcss_similarity(x, x, epsilon=0.1) == 1.0
        assert lcss_distance(x, x, epsilon=0.1) == 0.0

    def test_epsilon_matching(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.05, 2.6, 3.02])
        assert lcss_length(a, b, epsilon=0.1) == 2

    def test_delta_band(self):
        a = np.arange(10.0)
        b = np.arange(10.0)[::-1]
        assert lcss_length(a, b, epsilon=0.1, delta=1) <= lcss_length(
            a, b, epsilon=0.1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            lcss_length(np.array([1.0]), np.array([1.0]), epsilon=-1.0)
        with pytest.raises(ValueError):
            lcss_similarity(np.array([]), np.array([]), epsilon=0.1)


class TestPredictors:
    def test_last_value(self, regular_series):
        pred = LastValuePredictor().predict(regular_series, 0.3)
        np.testing.assert_allclose(pred, regular_series.positions[-1])

    def test_last_value_empty(self):
        assert LastValuePredictor().predict(PLRSeries(), 0.1) is None

    def test_linear_extrapolation(self):
        series = PLRSeries()
        series.append(Vertex(0.0, (0.0,), IN))
        series.append(Vertex(1.0, (10.0,), EX))
        pred = LinearExtrapolationPredictor().predict(series, 0.5)
        np.testing.assert_allclose(pred, [15.0])

    def test_linear_extrapolation_capped(self):
        series = PLRSeries()
        series.append(Vertex(0.0, (0.0,), IN))
        series.append(Vertex(0.01, (10.0,), EX))  # 1000 mm/s spike
        pred = LinearExtrapolationPredictor(max_step=5.0).predict(series, 1.0)
        assert abs(pred[0] - 10.0) <= 5.0 + 1e-9

    def test_sinusoidal_on_pure_sine_history(self):
        # PLR vertices sampled from a sinusoid with known period.
        period = 4.0
        series = PLRSeries()
        states = (IN, EX, EOE)
        for i in range(24):
            t = i * period / 3.0
            x = 5.0 * np.sin(2 * np.pi * t / period)
            series.append(Vertex(t, (x,), states[i % 3]))
        pred = SinusoidalPredictor(window_seconds=20.0).predict(series, 0.5)
        truth = 5.0 * np.sin(2 * np.pi * (series.end_time + 0.5) / period)
        assert pred is not None
        assert pred[0] == pytest.approx(truth, abs=1.0)

    def test_sinusoidal_needs_history(self):
        series = PLRSeries()
        series.append(Vertex(0.0, (0.0,), IN))
        assert SinusoidalPredictor().predict(series, 0.2) is None


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-10, max_value=10), min_size=3, max_size=25
    )
)
def test_property_dtw_nonnegative_and_symmetric(data):
    a = np.asarray(data)
    b = a[::-1].copy()
    assert dtw_distance(a, b) >= 0.0
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))
