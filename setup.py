"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs with the
pinned setuptools; on offline machines without it, ``python setup.py
develop`` (or ``pip install . --no-build-isolation``) installs via this
shim instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
